package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/accountant"
	"repro/internal/dp"
)

func TestParseArgs(t *testing.T) {
	dir := t.TempDir()
	cfg, err := parseArgs([]string{
		"-addr", "127.0.0.1:9999", "-ledger-dir", dir,
		"-fsync", "interval", "-fsync-interval", "50ms",
		"-snapshot-every", "128", "-pprof", "127.0.0.1:6061",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:9999" || cfg.pprofAddr != "127.0.0.1:6061" {
		t.Fatalf("addr %q pprof %q", cfg.addr, cfg.pprofAddr)
	}
	if cfg.opts.Dir != dir || cfg.opts.Fsync != accountant.FsyncInterval ||
		cfg.opts.FsyncInterval != 50*time.Millisecond || cfg.opts.SnapshotEvery != 128 {
		t.Fatalf("opts = %+v", cfg.opts)
	}

	if _, err := parseArgs(nil); err == nil {
		t.Fatal("missing -ledger-dir accepted")
	}
	if _, err := parseArgs([]string{"-ledger-dir", dir, "-fsync", "sometimes"}); err == nil {
		t.Fatal("bogus -fsync policy accepted")
	}

	// Group-mode flag validation.
	grp, err := parseArgs([]string{"-ledger-dir", dir, "-node-id", "n1",
		"-peers", "n1=127.0.0.1:1,n2=127.0.0.1:2,n3=127.0.0.1:3"})
	if err != nil {
		t.Fatal(err)
	}
	if grp.nodeID != "n1" || len(grp.peers) != 3 || grp.peers["n2"] != "127.0.0.1:2" {
		t.Fatalf("group cfg = %+v", grp)
	}
	if _, err := parseArgs([]string{"-ledger-dir", dir, "-node-id", "n1"}); err == nil {
		t.Fatal("-node-id without -peers accepted")
	}
	if _, err := parseArgs([]string{"-ledger-dir", dir, "-peers", "n1=a:1"}); err == nil {
		t.Fatal("-peers without -node-id accepted")
	}
	if _, err := parseArgs([]string{"-ledger-dir", dir, "-node-id", "n9", "-peers", "n1=a:1"}); err == nil {
		t.Fatal("-node-id missing from -peers accepted")
	}
	if _, err := parseArgs([]string{"-ledger-dir", dir, "-node-id", "n1", "-peers", "n1=a:1", "-fsync", "off"}); err == nil {
		t.Fatal("group mode with -fsync off accepted")
	}
}

// TestLedgerdEndToEnd boots the real binary path: attach, spend,
// restart, verify the fence and the replayed budget, shut down cleanly.
func TestLedgerdEndToEnd(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledgers")

	start := func() (base string, cancel context.CancelFunc, done chan error) {
		ctx, cancelCtx := context.WithCancel(context.Background())
		addrc := make(chan string, 1)
		done = make(chan error, 1)
		go func() {
			done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-ledger-dir", dir},
				func(addr string) { addrc <- addr })
		}()
		select {
		case addr := <-addrc:
			return "http://" + addr, cancelCtx, done
		case err := <-done:
			t.Fatalf("sequencer exited early: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("sequencer never started")
		}
		panic("unreachable")
	}
	stop := func(cancel context.CancelFunc, done chan error) {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("sequencer never shut down")
		}
	}

	base, cancel, done := start()
	var att struct {
		Epoch string `json:"epoch"`
	}
	postJSON(t, base+"/v1/ledgers/k/attach", `{"budget":{"epsilon":0.2,"delta":2e-6}}`, http.StatusOK, &att)
	var sp struct {
		Admitted bool `json:"admitted"`
		Ops      int  `json:"ops"`
	}
	postJSON(t, base+"/v1/ledgers/k/spend",
		`{"epoch":"`+att.Epoch+`","op_id":"c-1","label":"q0","cost":{"epsilon":0.1,"delta":1e-6}}`,
		http.StatusOK, &sp)
	if !sp.Admitted || sp.Ops != 1 {
		t.Fatalf("spend = %+v", sp)
	}
	stop(cancel, done)

	// Restart on the same directory: the old epoch is fenced, the spend
	// replayed, the budget still half gone.
	base, cancel, done = start()
	defer stop(cancel, done)
	var fenced struct {
		Code string `json:"code"`
	}
	postJSON(t, base+"/v1/ledgers/k/spend",
		`{"epoch":"`+att.Epoch+`","op_id":"c-2","label":"q1","cost":{"epsilon":0.1,"delta":1e-6}}`,
		http.StatusConflict, &fenced)
	if fenced.Code != "epoch-fenced" {
		t.Fatalf("stale-epoch code = %q, want epoch-fenced", fenced.Code)
	}
	var att2 struct {
		Epoch string `json:"epoch"`
		Ops   int    `json:"ops"`
	}
	postJSON(t, base+"/v1/ledgers/k/attach", `{"budget":{"epsilon":0.2,"delta":2e-6}}`, http.StatusOK, &att2)
	if att2.Epoch == att.Epoch || att2.Ops != 1 {
		t.Fatalf("re-attach = %+v (old epoch %q)", att2, att.Epoch)
	}
}

// TestHelperProcess is the re-exec entry point for process-level kill
// tests: the test binary re-runs itself with GDPLEDGERD_HELPER=1 and
// real gdpledgerd arguments after "--", so a test can SIGKILL a member
// mid-operation — something no in-process harness can simulate.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("GDPLEDGERD_HELPER") != "1" {
		t.Skip("helper process entry point")
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	if err := run(context.Background(), args, nil); err != nil {
		fmt.Fprintln(os.Stderr, "gdpledgerd helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// freePorts reserves n distinct loopback ports by binding and releasing
// them. A small race window remains; good enough for a test.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserving port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestGroupKillFailoverEndToEnd is the ISSUE's acceptance scenario at
// process level: a 3-member replicated group drains a 12-op budget,
// the primary is SIGKILLed mid-drain, the survivors elect a new term,
// and the client — walking the member list under the same op IDs —
// admits EXACTLY 12 operations before hitting the budget wall.
func TestGroupKillFailoverEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and rides an election timeout")
	}
	addrs := freePorts(t, 3)
	peers := fmt.Sprintf("n1=%s,n2=%s,n3=%s", addrs[0], addrs[1], addrs[2])
	procs := make(map[string]*exec.Cmd, 3)
	for i, id := range []string{"n1", "n2", "n3"} {
		dir := filepath.Join(t.TempDir(), id)
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcess", "--",
			"-addr", addrs[i], "-ledger-dir", dir, "-node-id", id, "-peers", peers,
			"-heartbeat", "50ms", "-election-timeout", "250ms")
		cmd.Env = append(os.Environ(), "GDPLEDGERD_HELPER=1")
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", id, err)
		}
		procs[id] = cmd
	}
	t.Cleanup(func() {
		for _, cmd := range procs {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	// roleOf asks one member for its replication role ("" if unreachable).
	client := &http.Client{Timeout: time.Second}
	roleOf := func(addr string) string {
		resp, err := client.Get("http://" + addr + "/v1/group/status")
		if err != nil {
			return ""
		}
		defer resp.Body.Close()
		var st struct {
			Role   string `json:"role"`
			Commit uint64 `json:"commit"`
			LogLen uint64 `json:"log_len"`
		}
		if json.NewDecoder(resp.Body).Decode(&st) != nil || st.Commit != st.LogLen {
			return ""
		}
		return st.Role
	}
	findPrimary := func(exclude string) string {
		for i, id := range []string{"n1", "n2", "n3"} {
			if id == exclude {
				continue
			}
			if roleOf(addrs[i]) == "primary" {
				return id
			}
		}
		return ""
	}
	waitPrimary := func(exclude string) string {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if id := findPrimary(exclude); id != "" {
				return id
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("no primary emerged (excluding %q)", exclude)
		return ""
	}
	waitPrimary("")

	// 12 slots exactly: ε 1.2 in 0.1 steps, δ 1.2e-5 in 1e-6 steps.
	budget := dp.Params{Epsilon: 1.2, Delta: 1.2e-5}
	per := dp.Params{Epsilon: 0.1, Delta: 1e-6}
	rl, err := accountant.OpenRemoteLedger(addrs[0]+","+addrs[1]+","+addrs[2], "shared", budget,
		accountant.RemoteOptions{
			Timeout:     2 * time.Second,
			OpTimeout:   60 * time.Second,
			Attempts:    60,
			BackoffBase: 20 * time.Millisecond,
			BackoffMax:  200 * time.Millisecond,
		})
	if err != nil {
		t.Fatalf("OpenRemoteLedger: %v", err)
	}
	admits := 0
	for i := 0; i < 4; i++ {
		if err := rl.Spend(fmt.Sprintf("pre-kill-%d", i), per); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
		admits++
	}

	// SIGKILL the primary mid-drain: no flush, no goodbye.
	victim := findPrimary("")
	if victim == "" {
		t.Fatal("primary vanished before the kill")
	}
	if err := procs[victim].Process.Kill(); err != nil {
		t.Fatalf("killing %s: %v", victim, err)
	}
	_ = procs[victim].Wait()
	delete(procs, victim)

	// Drain the remaining 8 slots through the failover, then hit the wall.
	for i := 0; i < 8; i++ {
		if err := rl.Spend(fmt.Sprintf("post-kill-%d", i), per); err != nil {
			t.Fatalf("spend after kill (%d admitted so far): %v", admits, err)
		}
		admits++
	}
	if admits != 12 {
		t.Fatalf("admitted %d ops, want exactly 12", admits)
	}
	if err := rl.Spend("over", per); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("13th spend: got %v, want ErrBudgetExceeded", err)
	}
	if st := rl.Status(); st.Failovers == 0 {
		t.Fatalf("client status %+v: expected at least one failover", st)
	}
}

func postJSON(t *testing.T, url, body string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: HTTP %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decoding: %v", url, err)
	}
}
