package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/accountant"
	"repro/internal/bipartite"
	"repro/internal/ledgerd"
)

// startSequencer runs a gdpledgerd service behind an httptest listener.
func startSequencer(t *testing.T) (*httptest.Server, *ledgerd.Service) {
	t.Helper()
	svc, err := ledgerd.New(ledgerd.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("ledgerd.New: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := httptest.NewServer(ledgerd.NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv, svc
}

// remoteConfig is testConfig pointed at a sequencer, with fast client
// retries.
func remoteConfig(addr string) Config {
	cfg := testConfig()
	cfg.LedgerAddr = addr
	cfg.ledgerRemoteOptions = accountant.RemoteOptions{
		Timeout:     2 * time.Second,
		Attempts:    2,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
	return cfg
}

func TestLedgerConfigConflicts(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"dir+addr", func(c *Config) { c.LedgerDir = t.TempDir(); c.LedgerAddr = "127.0.0.1:1" }},
		{"addr+fsync", func(c *Config) { c.LedgerAddr = "127.0.0.1:1"; c.LedgerFsync = accountant.FsyncAlways }},
		{"addr+fsync-interval", func(c *Config) { c.LedgerAddr = "127.0.0.1:1"; c.LedgerFsyncInterval = time.Second }},
		{"addr+snapshot-every", func(c *Config) { c.LedgerAddr = "127.0.0.1:1"; c.LedgerSnapshotEvery = 10 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mut(&cfg)
			if _, err := Open(cfg); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Open with conflicting ledger config: got %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestOpenPingsSequencer(t *testing.T) {
	t.Parallel()
	// Port 1 refuses connections: a registry that could never account a
	// spend must fail at Open, not at the first ingest.
	cfg := testConfig()
	cfg.LedgerAddr = "127.0.0.1:1"
	if _, err := Open(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Open against dead sequencer: got %v, want ErrBadConfig", err)
	}
}

// TestTwoReplicasShareOneBudget is the PR's reason to exist: two
// registries (replicas) pointed at one sequencer drain ONE budget to
// exactly the budgeted admit count — never its multiple — and both
// refuse afterwards.
func TestTwoReplicasShareOneBudget(t *testing.T) {
	t.Parallel()
	srv, _ := startSequencer(t)
	cfg := remoteConfig(srv.URL)

	replicas := make([]*Dataset, 2)
	for i := range replicas {
		reg, err := Open(cfg)
		if err != nil {
			t.Fatalf("Open replica %d: %v", i, err)
		}
		t.Cleanup(func() { reg.Close() })
		ds, err := reg.AddDataset("tiny", testSource(t))
		if err != nil {
			t.Fatalf("ingest on replica %d: %v", i, err)
		}
		if got := ds.LedgerBackend(); got != "remote" {
			t.Fatalf("replica %d backend %q, want remote", i, got)
		}
		replicas[i] = ds
	}

	// testConfig budgets exactly 50 single-debit queries. 2 replicas × 4
	// spenders × 10 marginals = 80 attempts race for the 50 slots.
	const (
		slots       = 50
		spenders    = 4
		perSpender  = 10
		perReplicaT = spenders * perSpender
	)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		admits  int
		rejects int
	)
	for _, ds := range replicas {
		for g := 0; g < spenders; g++ {
			wg.Add(1)
			go func(ds *Dataset) {
				defer wg.Done()
				sess := ds.NewSession() // auto sessions bypass the response cache
				for i := 0; i < perSpender; i++ {
					_, err := sess.Marginal(1, bipartite.Left)
					mu.Lock()
					switch {
					case err == nil:
						admits++
					case errors.Is(err, accountant.ErrBudgetExceeded):
						rejects++
					default:
						t.Errorf("marginal: %v", err)
					}
					mu.Unlock()
				}
			}(ds)
		}
	}
	wg.Wait()
	if admits != slots {
		t.Fatalf("two replicas admitted %d queries against one budget, want exactly %d (over-admission doubles the paper's guarantee)", admits, slots)
	}
	if rejects != 2*perReplicaT-slots {
		t.Fatalf("rejects %d, want %d", rejects, 2*perReplicaT-slots)
	}
	// Both replicas observe the shared exhaustion, and the sequencer's
	// trail holds exactly the admitted ops.
	for i, ds := range replicas {
		if _, err := ds.NewSession().Marginal(1, bipartite.Left); !errors.Is(err, accountant.ErrBudgetExceeded) {
			t.Fatalf("replica %d after drain: got %v, want ErrBudgetExceeded", i, err)
		}
		if got := ds.OpCount(); got != slots {
			t.Fatalf("replica %d sees %d ops, want %d", i, got, slots)
		}
	}
}

// TestRemoteReplicaByteIdentity: answers are pure functions of (seed,
// dataset, fingerprint, stream, seq, query), so a remote-ledger replica
// returns byte-identical releases to a single-process mem-ledger run
// under the same seed — the accounting backend can never bend a noise
// draw.
func TestRemoteReplicaByteIdentity(t *testing.T) {
	t.Parallel()
	srv, _ := startSequencer(t)

	answers := func(cfg Config) string {
		reg, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer reg.Close()
		ds, err := reg.AddDataset("tiny", testSource(t))
		if err != nil {
			t.Fatal(err)
		}
		sess := ds.SessionAt(3)
		view, err := sess.ReleaseLevel(2)
		if err != nil {
			t.Fatal(err)
		}
		marg, err := sess.Marginal(1, bipartite.Right)
		if err != nil {
			t.Fatal(err)
		}
		top, err := sess.TopK(2, bipartite.Left, 3)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(map[string]any{"view": view, "marginal": marg, "topk": top})
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}

	local := answers(testConfig())
	remote := answers(remoteConfig(srv.URL))
	if local != remote {
		t.Fatalf("remote-ledger replica diverged from local replay:\nlocal  %s\nremote %s", local, remote)
	}
}

// TestRemoteSpendBeforeRelease: a sequencer that stops answering latches
// the replica fail-closed — queries error, nothing is released, and the
// ledger never under-reports.
func TestRemoteFailClosed(t *testing.T) {
	t.Parallel()
	srv, _ := startSequencer(t)
	cfg := remoteConfig(srv.URL)
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	ds, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	sess := ds.NewSession()
	if _, err := sess.Marginal(1, bipartite.Left); err != nil {
		t.Fatalf("marginal while healthy: %v", err)
	}
	srv.CloseClientConnections()
	srv.Close()
	if _, err := sess.Marginal(1, bipartite.Left); !errors.Is(err, accountant.ErrLedgerFailed) {
		t.Fatalf("marginal against dead sequencer: got %v, want ErrLedgerFailed", err)
	}
	// Latched for good: the partition healing is not enough, the replica
	// must re-attach (restart) before spending again.
	if _, err := sess.Marginal(1, bipartite.Left); !errors.Is(err, accountant.ErrLedgerFailed) {
		t.Fatalf("latched marginal: got %v, want ErrLedgerFailed", err)
	}
}

// TestServeReadyz: the replica's readiness gate tracks its ability to
// ACCOUNT queries — it turns 503 when the ledger sequencer becomes
// unreachable, while liveness (/healthz) stays 200. A load balancer
// keyed on readyz stops routing to a replica that could only answer
// with unaccounted (hence refused) queries.
func TestServeReadyz(t *testing.T) {
	t.Parallel()
	seq, _ := startSequencer(t)
	ts, _ := newTestServer(t, remoteConfig(seq.URL))
	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz with live sequencer: HTTP %d, want 200", got)
	}
	seq.CloseClientConnections()
	seq.Close()
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead sequencer: HTTP %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz must stay a liveness probe: HTTP %d, want 200", got)
	}
}

// TestBudgetEndpointRemoteBackend: /budget stamps the accounting
// backend and embeds the sequencer binding for remote datasets.
func TestBudgetEndpointRemoteBackend(t *testing.T) {
	t.Parallel()
	seq, svc := startSequencer(t)
	ts, reg := newTestServer(t, remoteConfig(seq.URL))
	if _, err := reg.AddDataset("web", testSource(t)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/datasets/web/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Durability struct {
			Backend string `json:"backend"`
			Durable bool   `json:"durable"`
			Remote  *struct {
				Addr  string `json:"addr"`
				Key   string `json:"key"`
				Epoch string `json:"epoch"`
			} `json:"remote"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Durability.Backend != "remote" || !body.Durability.Durable {
		t.Fatalf("durability = %+v, want backend remote, durable true", body.Durability)
	}
	if body.Durability.Remote == nil || body.Durability.Remote.Epoch != svc.Epoch() {
		t.Fatalf("remote binding = %+v, want epoch %q", body.Durability.Remote, svc.Epoch())
	}
	if !strings.HasPrefix(body.Durability.Remote.Key, "web-") {
		t.Fatalf("remote key %q, want the web-<hash>-<fingerprint> ledger key", body.Durability.Remote.Key)
	}
}

// TestBudgetEndpointOpsCap: ?ops=N caps the audit trail in the /budget
// response; the default stays the full trail, ops=0 omits it.
func TestBudgetEndpointOpsCap(t *testing.T) {
	t.Parallel()
	ts, reg := newTestServer(t, testConfig())
	ds, err := reg.AddDataset("web", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	sess := ds.SessionAt(9)
	for i := 0; i < 5; i++ {
		if _, err := sess.Marginal(1, bipartite.Left); err != nil {
			t.Fatal(err)
		}
	}

	get := func(query string) (audit string, present bool) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/datasets/web/budget" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /budget%s: HTTP %d", query, resp.StatusCode)
		}
		var body map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		raw, ok := body["audit"]
		if !ok {
			return "", false
		}
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			t.Fatal(err)
		}
		return s, true
	}

	full, ok := get("")
	if !ok || strings.Count(full, "\n") != 6 { // header + 5 ops + trailing newline
		t.Fatalf("default audit = %q (present %v), want the full 5-op trail", full, ok)
	}
	capped, ok := get("?ops=2")
	if !ok {
		t.Fatal("?ops=2 omitted the audit entirely")
	}
	if !strings.Contains(capped, "showing last 2") || strings.Count(capped, "\n") != 3 {
		t.Fatalf("?ops=2 audit = %q, want header + 2 ops", capped)
	}
	if !strings.Contains(capped, "q4/marginal") {
		t.Fatalf("?ops=2 audit = %q, want the MOST RECENT ops", capped)
	}
	if big, ok := get("?ops=100"); !ok || big != full {
		t.Fatalf("?ops=100 audit should equal the full trail")
	}
	if _, ok := get("?ops=0"); ok {
		t.Fatal("?ops=0 still carried an audit trail")
	}
	// Malformed caps are a client error, not a silent full dump.
	resp, err := http.Get(ts.URL + "/v1/datasets/web/budget?ops=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?ops=-1: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestDurableBackendStamp: the wal and mem backends stamp themselves
// too — benchdiff keys on this to refuse cross-backend comparisons.
func TestBackendStamps(t *testing.T) {
	t.Parallel()
	memCfg := testConfig()
	_, memDS := openTestDataset(t, memCfg)
	if got := memDS.LedgerBackend(); got != "mem" {
		t.Fatalf("mem backend stamp %q", got)
	}
	walCfg := testConfig()
	walCfg.LedgerDir = t.TempDir()
	reg, err := Open(walCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	ds, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.LedgerBackend(); got != "wal" {
		t.Fatalf("wal backend stamp %q", got)
	}
	if _, ok := ds.RemoteStatus(); ok {
		t.Fatal("wal dataset reports a remote binding")
	}
}
