package rng

import "math"

// Batched normal sampling.
//
// The Marsaglia polar Normal costs a log and a square root per pair of
// variates and rejects ~21% of its uniforms, which is fine for scalar
// queries but dominates Phase 2 when a release fills a 4^9-cell noisy
// histogram. NormalsSigma instead runs a 512-layer Marsaglia–Tsang
// ziggurat: ~99.25% of draws are one Uint64, one table lookup and one
// multiply; the remaining draws fall back to a slow path that samples the
// wedge (one exp) or the tail (two logs). The
// two samplers realize the same N(0, 1) law — rng_test.go
// cross-validates moments and the KS statistic of both against the exact
// normal CDF — but they consume the underlying uniform stream
// differently, so Normal() is kept unchanged for draw-for-draw
// compatibility with existing seeded streams.

// Ziggurat constants: zigTailR is the right edge of the last layer and
// zigArea the common area of each of the zigLayers layers (tail included
// in layer 0). The pair was computed by solving the ziggurat closure
// condition (the recurrence from x_{N-1} = r down to x_1 must satisfy
// zigArea/x_1 + exp(-x_1²/2) = 1) with 200-step bisection in float64;
// the same solver reproduces the canonical Marsaglia–Tsang 128-layer
// (3.442619855899, 9.91256303526217e-3) and Doornik 256-layer
// (3.6541528853610088, 4.92867323399891e-3) constants to ~1e-13, and
// TestZigguratTableCloses pins the closure residual. 512 layers keep the
// slow-path entry rate at ~0.75% (128 layers: ~2.8%) — each layer
// boundary halving roughly halves the wedge traffic — which matters
// because a slow draw costs ~10× a fast one. Bits 0–8 of each uniform
// index the layer and bits 9–63 form the position, so the two fields
// tile the word exactly.
const (
	zigLayers = 512
	zigTailR  = 3.852046150368392
	zigArea   = 2.456766351541349e-3
	// zigM scales the 55-bit signed integer drawn per sample to [-1, 1).
	zigM = 1 << 54
)

// Ziggurat tables, filled by initZiggurat: zigK[i] is the acceptance
// threshold for the |55-bit position| in layer i, zigW[i] the layer's
// scale x_i/zigM, and zigF[i] = exp(-x_i²/2).
var (
	zigK [zigLayers]uint64
	zigW [zigLayers]float64
	zigF [zigLayers]float64
)

func init() { initZiggurat() }

func initZiggurat() {
	dn := zigTailR
	tn := dn
	q := zigArea / math.Exp(-0.5*dn*dn)

	zigK[0] = uint64((dn / q) * zigM)
	zigK[1] = 0
	zigW[0] = q / zigM
	zigW[zigLayers-1] = dn / zigM
	zigF[0] = 1
	zigF[zigLayers-1] = math.Exp(-0.5 * dn * dn)
	for i := zigLayers - 2; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(zigArea/dn+math.Exp(-0.5*dn*dn)))
		zigK[i+1] = uint64((dn / tn) * zigM)
		tn = dn
		zigF[i] = math.Exp(-0.5 * dn * dn)
		zigW[i] = dn / zigM
	}
}

// Blocked fill geometry. ZigBlock uniforms are generated per batch — 4 KB,
// small enough that the block, the straggler index list and the output
// window all stay L1-resident while the branch-free transform runs.
// Fills shorter than zigBlockMin samples go through the per-sample scalar
// loop instead: the blocked path's stack buffers cost more to set up
// than a handful of samples are worth. The scalar loop keeps the
// historical one-uniform-per-sample consumption PATTERN, but its
// values still changed with the 128→512-layer table swap (different
// bit split, tables and tail edge) — no ziggurat draw replays the
// pre-512-layer values, only Normal()'s polar stream is untouched.
const (
	// ZigBlock is the blocked fill's batch size in samples. Exported so
	// callers that chunk a larger fill (core.noisyCells fusing the counts
	// add into the noise pass) can pick a multiple of it: NormalsSigma
	// consumes the uniform stream identically whether a fill of
	// n·ZigBlock samples arrives as one call or as n calls.
	ZigBlock = 512

	// zigBlockMin balances the blocked path's fixed setup (the ~6 KB of
	// stack buffers the runtime zeroes per call) against its ~1.3
	// ns/sample advantage: below ~128 samples the scalar loop wins.
	zigBlockMin = 128
)

// NormalsSigma fills dst with independent normal variates of mean 0 and
// standard deviation sigma, drawn from the ziggurat sampler. One batched
// call replaces len(dst) scalar Normal calls in the Phase-2 release hot
// path. A non-positive sigma fills dst with zeros (empty levels need no
// noise).
//
// Fills of zigBlockMin or more samples run the blocked fast path: a whole
// block of uniforms is generated at once (xoshiro state in registers, no
// per-sample method call), the rectangular accept runs branch-free over
// the block with rejected indices compacted into a straggler list, and
// one short pass re-draws the stragglers through normalZigSlow. The
// output law is identical to the scalar path's — the fast-path accept
// test and the slow-path samplers are unchanged — but the uniform stream
// is consumed block-at-a-time rather than sample-at-a-time, so fixed-seed
// outputs differ from the pre-blocked implementation whenever a slow-path
// draw occurs (the golden test pins the new stream). Consumption depends
// only on len(dst) and the stream position, never on sigma. NormalsSigma
// advances the same uniform stream as every other sampler on the Source
// but is not draw-for-draw compatible with Normal(); give each consumer
// its own Split stream when exact replay matters.
func (r *Source) NormalsSigma(dst []float64, sigma float64) {
	if sigma <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if len(dst) < zigBlockMin {
		r.normalsSigmaScalar(dst, sigma)
		return
	}
	var block [ZigBlock]uint64
	var strag [ZigBlock]int32
	for len(dst) > 0 {
		n := len(dst)
		if n > ZigBlock {
			n = ZigBlock
		}
		out := dst[:n]
		ns := r.zigFillBlock(out, &block, &strag, sigma)
		// Compact straggler pass: the ~0.75% of samples that missed the
		// rectangle re-enter the exact wedge/tail sampler in index order,
		// drawing further uniforms from the stream as needed. The calls
		// live here, in the outer per-block loop, so the hot transform in
		// zigFillBlock stays call-free (a call inside that function would
		// force the compiler to keep its loop state on the stack).
		for _, si := range strag[:ns] {
			v := block[si]
			out[si] = sigma * r.normalZigSlow(int64(v)>>9, v&(zigLayers-1))
		}
		dst = dst[n:]
	}
}

// zigFillBlock draws len(out) uniforms into block, writes every sample's
// fast-path ziggurat value to out, and compacts the indices that missed
// the rectangular accept into strag, returning how many. The accept runs
// branch-free: every value is computed and stored unconditionally, and
// the straggler list is built by unconditional store + masked increment,
// so the loop carries no data-dependent branches — and the function
// contains no calls after the uniform fill, which is what lets the
// compiler keep the whole loop state in registers.
func (r *Source) zigFillBlock(out []float64, block *[ZigBlock]uint64, strag *[ZigBlock]int32, sigma float64) int {
	n := len(out)
	r.fillUint64(block[:n])
	ns := 0
	for i, v := range block[:n] {
		// Bits 0–8 select the layer, bits 9–63 form a signed 55-bit
		// uniform; the two fields are disjoint, so layer and position
		// are independent.
		j := int64(v) >> 9
		iz := v & (zigLayers - 1)
		neg := j >> 63
		abs := uint64((j ^ neg) - neg)
		out[i] = sigma * (float64(j) * zigW[iz])
		// Reject iff abs >= zigK[iz]: both operands are < 2^63, so the
		// subtraction's sign bit is the comparison. The &-mask on the
		// index lets the compiler drop the bounds check (ns <= i < n).
		strag[ns&(ZigBlock-1)] = int32(i)
		ns += int((zigK[iz] - 1 - abs) >> 63)
	}
	return ns
}

// normalsSigmaScalar is the per-sample ziggurat loop, kept for fills too
// short to amortize the blocked path's buffers. It consumes exactly one
// uniform per fast-path sample, interleaved with any slow-path draws —
// the historical NormalsSigma consumption pattern — but draws the
// 512-layer tables, so its fixed-seed values differ from the 128-layer
// era like every other ziggurat path.
func (r *Source) normalsSigmaScalar(dst []float64, sigma float64) {
	for i := range dst {
		u := r.Uint64()
		j := int64(u) >> 9
		iz := u & (zigLayers - 1)
		abs := uint64(j)
		if j < 0 {
			abs = uint64(-j)
		}
		if abs < zigK[iz] {
			dst[i] = sigma * (float64(j) * zigW[iz])
			continue
		}
		dst[i] = sigma * r.normalZigSlow(j, iz)
	}
}

// normalZigSlow handles the ~0.75% of ziggurat draws that miss the
// rectangular fast path: layer 0 falls through to Marsaglia's exact tail
// sampler beyond zigTailR, other layers accept or reject inside the
// wedge between f(x_i) and f(x_{i-1}), resampling from scratch on
// rejection.
func (r *Source) normalZigSlow(j int64, iz uint64) float64 {
	for {
		if iz == 0 {
			// Tail: sample x > zigTailR with density proportional to
			// exp(-x²/2) via the standard double-exponential rejection.
			for {
				x := -math.Log(r.OpenFloat64()) / zigTailR
				y := -math.Log(r.OpenFloat64())
				if y+y >= x*x {
					if j >= 0 {
						return zigTailR + x
					}
					return -(zigTailR + x)
				}
			}
		}
		x := float64(j) * zigW[iz]
		if zigF[iz]+r.Float64()*(zigF[iz-1]-zigF[iz]) < math.Exp(-0.5*x*x) {
			return x
		}
		u := r.Uint64()
		j = int64(u) >> 9
		iz = u & (zigLayers - 1)
		abs := uint64(j)
		if j < 0 {
			abs = uint64(-j)
		}
		if abs < zigK[iz] {
			return float64(j) * zigW[iz]
		}
	}
}
