// Package accountant tracks differential-privacy budget expenditure and
// implements the composition theorems the disclosure pipeline relies on.
//
// The paper's multi-level release runs one specialization phase and one
// noise-injection phase per group level; whether those consume independent
// budgets (the paper's per-level reading) or compose into one global εg is
// an evaluation knob (ablation A1 in DESIGN.md). The Ledger gives every
// pipeline run an auditable record of what was spent where, and refuses
// operations that would exceed the configured total.
package accountant

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/dp"
)

// Errors returned by the ledger and the composition helpers.
var (
	ErrBudgetExceeded = errors.New("accountant: operation would exceed the privacy budget")
	ErrNoOps          = errors.New("accountant: composition over zero operations")
	ErrBadSplit       = errors.New("accountant: invalid budget split")
)

// Op is one recorded privacy expenditure.
type Op struct {
	// Seq is the 1-based order in which the operation was admitted.
	Seq int
	// Label identifies the operation for audit ("phase1/level3" etc.).
	Label string
	// Cost is the (ε, δ) consumed.
	Cost dp.Params
}

// Ledger is the privacy-expenditure accounting contract: a fixed total
// (ε, δ) budget debited under basic sequential composition, with an
// auditable admission-ordered trail. Spend and SpendBytes either admit
// an operation in full or reject it with ErrBudgetExceeded (or, for
// durable implementations, an I/O failure) having changed nothing — the
// caller must not release any noisy bytes for an op that was not
// admitted. Implementations are safe for concurrent use.
//
// MemLedger is the in-memory implementation (process lifetime only);
// DurableLedger persists every admission to an append-only WAL before
// reporting it admitted, so spends survive crashes and restarts. A
// future consensus-backed implementation can share budgets across
// replicas behind the same interface.
type Ledger interface {
	// Budget returns the configured total.
	Budget() dp.Params
	// Spend admits an operation or returns ErrBudgetExceeded (spending
	// nothing) if it would exceed the total budget.
	Spend(label string, cost dp.Params) error
	// SpendBytes is Spend with the label passed as reusable bytes — the
	// zero-alloc form for hot paths. The bytes are copied before return.
	SpendBytes(label []byte, cost dp.Params) error
	// Spent returns the basic-composition total of admitted operations.
	Spent() dp.Params
	// Remaining returns the budget left, clamped at zero per component.
	Remaining() dp.Params
	// OpCount returns the number of admitted operations.
	OpCount() int
	// Ops returns a copy of the audit trail in admission order.
	Ops() []Op
	// AuditReport renders the trail as a human-readable string.
	AuditReport() string
}

var (
	_ Ledger = (*MemLedger)(nil)
	_ Ledger = (*DurableLedger)(nil)
)

// opRec is the internal audit-trail entry: the label lives as a span of
// the ledger's shared label arena instead of an individual string, so
// admitting an op costs no per-op string allocation — the serving hot
// path debits the ledger on every query, and its labels arrive as bytes
// assembled in the caller's scratch (SpendBytes). Ops() materializes the
// exported Op shape on demand.
type opRec struct {
	labelOff int
	labelLen int
	cost     dp.Params
}

// MemLedger tracks expenditures against a fixed total budget under basic
// (sequential) composition, in memory only: state does not survive the
// process (use DurableLedger where spends must outlive a restart). It is
// safe for concurrent use: pipeline phases may spend from worker
// goroutines.
type MemLedger struct {
	mu     sync.Mutex
	budget dp.Params
	ops    []opRec
	arena  []byte // concatenated op labels, indexed by opRec spans
	eps    float64
	delta  float64
}

// NewLedger returns an in-memory ledger with the given total budget.
func NewLedger(budget dp.Params) (*MemLedger, error) {
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	return &MemLedger{budget: budget}, nil
}

// Budget returns the configured total.
func (l *MemLedger) Budget() dp.Params { return l.budget }

// Spend admits an operation with the given cost, or returns
// ErrBudgetExceeded (spending nothing) if basic composition of all admitted
// operations would exceed the total budget. A tiny relative tolerance
// absorbs floating-point drift so that n spends of total/n always fit.
func (l *MemLedger) Spend(label string, cost dp.Params) error {
	// The string→[]byte conversion allocates, which is fine off the hot
	// path; per-query spenders assemble bytes and call SpendBytes.
	return l.SpendBytes([]byte(label), cost)
}

// SpendBytes is Spend with the label passed as bytes — the zero-alloc
// form for hot paths that assemble labels in a reusable scratch buffer.
// The bytes are copied into the ledger's arena before returning; the
// caller may reuse label immediately.
func (l *MemLedger) SpendBytes(label []byte, cost dp.Params) error {
	if err := cost.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.check(cost); err != nil {
		return fmt.Errorf("%w (label %q)", err, label)
	}
	l.commit(label, cost)
	return nil
}

// Check reports whether the budget could admit cost right now, spending
// nothing — the pre-admission probe a replicated sequencer runs before
// appending a spend to its log (the commit happens when the replicated
// entry applies, not here).
func (l *MemLedger) Check(cost dp.Params) error {
	if err := cost.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.check(cost)
}

// check reports whether the budget can admit cost, mutating nothing —
// the durable ledger relies on that, logging the op between check and
// commit. Only a RELATIVE tolerance absorbs floating-point drift (so n
// spends of total/n always fit); there is deliberately no absolute
// slack, because a strictly zero-delta budget is a pure-ε guarantee and
// must reject ANY op with Delta > 0, however tiny. Callers hold l.mu.
func (l *MemLedger) check(cost dp.Params) error {
	const tol = 1e-9
	if l.eps+cost.Epsilon > l.budget.Epsilon*(1+tol) ||
		l.delta+cost.Delta > l.budget.Delta*(1+tol) {
		return fmt.Errorf("%w: spent %s + requested %s > budget %s",
			ErrBudgetExceeded, dp.Params{Epsilon: l.eps, Delta: l.delta}, cost, l.budget)
	}
	return nil
}

// commit records a checked op. Callers hold l.mu and have ensured
// check(cost) passed (replay of a durable trail recommits historical
// ops without rechecking — their admission is already fact).
func (l *MemLedger) commit(label []byte, cost dp.Params) {
	l.eps += cost.Epsilon
	l.delta += cost.Delta
	l.ops = append(l.ops, opRec{labelOff: len(l.arena), labelLen: len(label), cost: cost})
	l.arena = append(l.arena, label...)
}

// Spent returns the basic-composition total of admitted operations.
func (l *MemLedger) Spent() dp.Params {
	l.mu.Lock()
	defer l.mu.Unlock()
	return dp.Params{Epsilon: l.eps, Delta: l.delta}
}

// Remaining returns the budget left under basic composition. Components
// are clamped at zero.
func (l *MemLedger) Remaining() dp.Params {
	l.mu.Lock()
	defer l.mu.Unlock()
	return dp.Params{
		Epsilon: math.Max(0, l.budget.Epsilon-l.eps),
		Delta:   math.Max(0, l.budget.Delta-l.delta),
	}
}

// OpCount returns the number of admitted operations without
// materializing the audit trail (Ops allocates one label string per op;
// callers that only need the count — status endpoints polled in a loop —
// should use this).
func (l *MemLedger) OpCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops)
}

// Ops returns a copy of the audit trail in admission order. The Op
// labels are materialized from the arena here, at audit time, rather
// than allocated per admission.
func (l *MemLedger) Ops() []Op {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Op, len(l.ops))
	for i, rec := range l.ops {
		out[i] = Op{
			Seq:   i + 1,
			Label: string(l.arena[rec.labelOff : rec.labelOff+rec.labelLen]),
			Cost:  rec.cost,
		}
	}
	return out
}

// AuditReport renders the trail as a human-readable multi-line string.
func (l *MemLedger) AuditReport() string {
	ops := l.Ops()
	spent := l.Spent()
	var b strings.Builder
	fmt.Fprintf(&b, "privacy ledger: budget %s, spent %s, %d ops\n", l.budget, spent, len(ops))
	for _, op := range ops {
		fmt.Fprintf(&b, "  %3d. %-24s %s\n", op.Seq, op.Label, op.Cost)
	}
	return b.String()
}

// ComposeBasic returns the basic sequential composition of the given
// costs: ε and δ add.
func ComposeBasic(costs []dp.Params) (dp.Params, error) {
	if len(costs) == 0 {
		return dp.Params{}, ErrNoOps
	}
	var out dp.Params
	for i, c := range costs {
		if err := c.Validate(); err != nil {
			return dp.Params{}, fmt.Errorf("cost %d: %w", i, err)
		}
		out.Epsilon += c.Epsilon
		out.Delta += c.Delta
	}
	return out, nil
}

// ComposeParallel returns the parallel composition of the given costs:
// mechanisms operating on disjoint data cost the maximum, not the sum.
// The paper's per-level releases to different privilege tiers are modeled
// this way in the "paper mode" pipeline.
func ComposeParallel(costs []dp.Params) (dp.Params, error) {
	if len(costs) == 0 {
		return dp.Params{}, ErrNoOps
	}
	var out dp.Params
	for i, c := range costs {
		if err := c.Validate(); err != nil {
			return dp.Params{}, fmt.Errorf("cost %d: %w", i, err)
		}
		out.Epsilon = math.Max(out.Epsilon, c.Epsilon)
		out.Delta = math.Max(out.Delta, c.Delta)
	}
	return out, nil
}

// ComposeAdvanced returns the k-fold advanced composition (Dwork–Roth,
// Theorem 3.20) of k adaptive invocations of an (ε, δ)-DP mechanism with
// slack δ':
//
//	ε_total = √(2k ln(1/δ'))·ε + k·ε·(e^ε − 1)
//	δ_total = k·δ + δ'
func ComposeAdvanced(cost dp.Params, k int, deltaSlack float64) (dp.Params, error) {
	if err := cost.Validate(); err != nil {
		return dp.Params{}, err
	}
	if k <= 0 {
		return dp.Params{}, fmt.Errorf("accountant: k must be positive (got %d)", k)
	}
	if !(deltaSlack > 0 && deltaSlack < 1) {
		return dp.Params{}, fmt.Errorf("accountant: delta slack must be in (0,1) (got %v)", deltaSlack)
	}
	kf := float64(k)
	eps := math.Sqrt(2*kf*math.Log(1/deltaSlack))*cost.Epsilon +
		kf*cost.Epsilon*(math.Expm1(cost.Epsilon))
	return dp.Params{Epsilon: eps, Delta: kf*cost.Delta + deltaSlack}, nil
}

// AdvancedPerQueryEpsilon inverts ComposeAdvanced: it returns the largest
// per-query ε such that k queries compose (with slack δ') to at most
// epsTotal. Solved by bisection; useful when splitting a global budget
// across levels under advanced composition (ablation A1).
func AdvancedPerQueryEpsilon(epsTotal float64, k int, deltaSlack float64) (float64, error) {
	if !(epsTotal > 0) || math.IsNaN(epsTotal) || math.IsInf(epsTotal, 0) {
		return 0, fmt.Errorf("accountant: total epsilon must be > 0 (got %v)", epsTotal)
	}
	if k <= 0 {
		return 0, fmt.Errorf("accountant: k must be positive (got %d)", k)
	}
	if !(deltaSlack > 0 && deltaSlack < 1) {
		return 0, fmt.Errorf("accountant: delta slack must be in (0,1) (got %v)", deltaSlack)
	}
	total := func(eps float64) float64 {
		kf := float64(k)
		return math.Sqrt(2*kf*math.Log(1/deltaSlack))*eps + kf*eps*math.Expm1(eps)
	}
	lo, hi := 0.0, epsTotal
	for total(hi) < epsTotal {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if total(mid) > epsTotal {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}

// Splitter divides a total budget across n sub-releases.
type Splitter interface {
	// Split returns n per-release budgets whose basic composition does
	// not exceed total.
	Split(total dp.Params, n int) ([]dp.Params, error)
}

// UniformSplitter gives every release total/n.
type UniformSplitter struct{}

var _ Splitter = UniformSplitter{}

// Split implements Splitter.
func (UniformSplitter) Split(total dp.Params, n int) ([]dp.Params, error) {
	if err := total.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSplit, n)
	}
	out := make([]dp.Params, n)
	for i := range out {
		out[i] = dp.Params{Epsilon: total.Epsilon / float64(n), Delta: total.Delta / float64(n)}
	}
	return out, nil
}

// GeometricSplitter assigns budgets proportional to Ratio^i, i = 0..n-1.
// Ratio > 1 favors later (finer, lower-sensitivity) releases; Ratio < 1
// favors earlier ones. Ratio must be positive and not 1 (use
// UniformSplitter for equal shares).
type GeometricSplitter struct {
	Ratio float64
}

var _ Splitter = GeometricSplitter{}

// Split implements Splitter.
func (s GeometricSplitter) Split(total dp.Params, n int) ([]dp.Params, error) {
	if err := total.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSplit, n)
	}
	if !(s.Ratio > 0) || s.Ratio == 1 || math.IsInf(s.Ratio, 0) || math.IsNaN(s.Ratio) {
		return nil, fmt.Errorf("%w: ratio=%v", ErrBadSplit, s.Ratio)
	}
	weights := make([]float64, n)
	w := 1.0
	for i := range weights {
		weights[i] = w
		w *= s.Ratio
	}
	return SplitWeighted(total, weights)
}

// SplitWeighted divides total proportionally to the given positive
// weights.
func SplitWeighted(total dp.Params, weights []float64) ([]dp.Params, error) {
	if err := total.Validate(); err != nil {
		return nil, err
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("%w: no weights", ErrBadSplit)
	}
	var sum float64
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
			return nil, fmt.Errorf("%w: weight %d = %v", ErrBadSplit, i, w)
		}
		sum += w
	}
	out := make([]dp.Params, len(weights))
	for i, w := range weights {
		frac := w / sum
		out[i] = dp.Params{Epsilon: total.Epsilon * frac, Delta: total.Delta * frac}
	}
	return out, nil
}

// SortOpsByCost returns the audit trail sorted by descending ε, for
// reporting which phases dominate expenditure.
func SortOpsByCost(ops []Op) []Op {
	out := append([]Op(nil), ops...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost.Epsilon > out[j].Cost.Epsilon })
	return out
}
