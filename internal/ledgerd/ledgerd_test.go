package ledgerd_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/accountant"
	"repro/internal/accountant/ledgertest"
	"repro/internal/dp"
	"repro/internal/ledgerd"
)

func newService(t *testing.T, dir string) *ledgerd.Service {
	t.Helper()
	svc, err := ledgerd.New(ledgerd.Options{Dir: dir})
	if err != nil {
		t.Fatalf("ledgerd.New: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// fastRemote is the client policy for tests: real retries, no real
// waiting.
func fastRemote() accountant.RemoteOptions {
	return accountant.RemoteOptions{
		Timeout:     2 * time.Second,
		Attempts:    3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

func TestSpendExactlyOnce(t *testing.T) {
	svc := newService(t, t.TempDir())
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	att, err := svc.Attach("k1", budget)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	cost := dp.Params{Epsilon: 0.1, Delta: 1e-6}
	first, err := svc.Spend("k1", att.Epoch, "op-1", "s1/q0/view/level2", cost)
	if err != nil {
		t.Fatalf("Spend: %v", err)
	}
	if first.Replayed || first.Seq != 1 {
		t.Fatalf("first spend: %+v, want fresh seq 1", first)
	}
	// The same op ID retried — however many times — re-acks without
	// re-debiting.
	for i := 0; i < 3; i++ {
		again, err := svc.Spend("k1", att.Epoch, "op-1", "s1/q0/view/level2", cost)
		if err != nil {
			t.Fatalf("retry %d: %v", i, err)
		}
		if !again.Replayed || again.Seq != 1 || again.OpCount != 1 {
			t.Fatalf("retry %d: %+v, want replayed seq 1 of 1 op", i, again)
		}
	}
	if got := first.Spent; got != cost {
		t.Fatalf("spent %v, want %v", got, cost)
	}
}

func TestEpochFencingAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	cost := dp.Params{Epsilon: 0.25, Delta: 2.5e-6}

	svc1, err := ledgerd.New(ledgerd.Options{Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	att1, err := svc1.Attach("k", budget)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := svc1.Spend("k", att1.Epoch, "a-1", "x", cost); err != nil {
		t.Fatalf("Spend: %v", err)
	}
	// A token the sequencer never issued is fenced immediately.
	if _, err := svc1.Spend("k", "deadbeef:1", "a-2", "x", cost); !errors.Is(err, ledgerd.ErrEpochFenced) {
		t.Fatalf("bogus epoch: got %v, want ErrEpochFenced", err)
	}
	if err := svc1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	svc2 := newService(t, dir)
	if svc2.Epoch() == att1.Epoch {
		t.Fatal("restart reused the previous epoch token")
	}
	// The predecessor's token is fenced: a replica that attached before
	// the restart cannot keep spending on stale assumptions.
	if _, err := svc2.Spend("k", att1.Epoch, "a-3", "x", cost); !errors.Is(err, ledgerd.ErrEpochFenced) {
		t.Fatalf("stale epoch: got %v, want ErrEpochFenced", err)
	}
	// Re-attaching replays the durable state — spent survives, and the
	// first incarnation's op ID is still deduped.
	att2, err := svc2.Attach("k", budget)
	if err != nil {
		t.Fatalf("re-Attach: %v", err)
	}
	if att2.Spent != cost || att2.OpCount != 1 {
		t.Fatalf("replayed state %+v, want spent %v over 1 op", att2, cost)
	}
	res, err := svc2.Spend("k", att2.Epoch, "a-1", "x", cost)
	if err != nil {
		t.Fatalf("retry across restart: %v", err)
	}
	if !res.Replayed || res.OpCount != 1 {
		t.Fatalf("retry across restart: %+v, want replayed with no new debit", res)
	}
}

func TestAttachBudgetMismatch(t *testing.T) {
	svc := newService(t, t.TempDir())
	if _, err := svc.Attach("k", dp.Params{Epsilon: 1, Delta: 1e-5}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	_, err := svc.Attach("k", dp.Params{Epsilon: 2, Delta: 1e-5})
	if !errors.Is(err, accountant.ErrBudgetMismatch) {
		t.Fatalf("conflicting attach: got %v, want ErrBudgetMismatch", err)
	}
}

func TestExhaustionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	budget := dp.Params{Epsilon: 0.2, Delta: 2e-6}
	cost := dp.Params{Epsilon: 0.1, Delta: 1e-6}

	svc1, err := ledgerd.New(ledgerd.Options{Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	att, err := svc1.Attach("k", budget)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := svc1.Spend("k", att.Epoch, fmt.Sprintf("op-%d", i), "x", cost); err != nil {
			t.Fatalf("Spend %d: %v", i, err)
		}
	}
	if _, err := svc1.Spend("k", att.Epoch, "op-over", "x", cost); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("over-budget: got %v, want ErrBudgetExceeded", err)
	}
	svc1.Close()

	svc2 := newService(t, dir)
	att2, err := svc2.Attach("k", budget)
	if err != nil {
		t.Fatalf("re-Attach: %v", err)
	}
	if att2.OpCount != 2 {
		t.Fatalf("replayed %d ops, want 2", att2.OpCount)
	}
	if _, err := svc2.Spend("k", att2.Epoch, "op-after", "x", cost); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("exhausted budget after restart: got %v, want ErrBudgetExceeded", err)
	}
}

func TestKeyAndOpIDValidation(t *testing.T) {
	svc := newService(t, t.TempDir())
	for _, key := range []string{"", ".hidden", "../escape", "a/b", ".sequencer-epoch"} {
		if _, err := svc.Attach(key, dp.Params{Epsilon: 1}); !errors.Is(err, ledgerd.ErrBadKey) {
			t.Errorf("Attach(%q): got %v, want ErrBadKey", key, err)
		}
	}
	att, err := svc.Attach("ok", dp.Params{Epsilon: 1})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	for _, opID := range []string{"", "has|sep"} {
		if _, err := svc.Spend("ok", att.Epoch, opID, "x", dp.Params{Epsilon: 0.1}); !errors.Is(err, ledgerd.ErrBadOpID) {
			t.Errorf("Spend(opID %q): got %v, want ErrBadOpID", opID, err)
		}
	}
	if _, err := svc.Spend("never-attached", att.Epoch, "op", "x", dp.Params{Epsilon: 0.1}); !errors.Is(err, ledgerd.ErrNotAttached) {
		t.Errorf("unattached key: got %v, want ErrNotAttached", err)
	}
}

func TestOpsStripEnvelope(t *testing.T) {
	svc := newService(t, t.TempDir())
	att, err := svc.Attach("k", dp.Params{Epsilon: 1, Delta: 1e-5})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := svc.Spend("k", att.Epoch, "client-7-1", "s1/q0/marginal/level3", dp.Params{Epsilon: 0.1, Delta: 1e-6}); err != nil {
		t.Fatalf("Spend: %v", err)
	}
	ops, err := svc.Ops("k")
	if err != nil {
		t.Fatalf("Ops: %v", err)
	}
	if len(ops) != 1 || ops[0].Label != "s1/q0/marginal/level3" {
		t.Fatalf("ops %+v, want the client label without the op-ID envelope", ops)
	}
}

// TestRemoteLedgerConformance runs the shared Ledger suite against
// RemoteLedger talking to a live sequencer — the same contract
// MemLedger and DurableLedger pass in internal/accountant.
func TestRemoteLedgerConformance(t *testing.T) {
	var (
		n   int
		srv *httptest.Server
	)
	ledgertest.Run(t, ledgertest.Factory{
		New: func(t *testing.T, budget dp.Params) accountant.Ledger {
			n++
			svc := newService(t, t.TempDir())
			srv = httptest.NewServer(ledgerd.NewHandler(svc))
			t.Cleanup(srv.Close)
			rl, err := accountant.OpenRemoteLedger(srv.URL, fmt.Sprintf("conf-%d", n), budget, fastRemote())
			if err != nil {
				t.Fatalf("OpenRemoteLedger: %v", err)
			}
			t.Cleanup(func() { rl.Close() })
			return rl
		},
		// Failure mode: the sequencer becomes unreachable mid-flight.
		Fail: func(t *testing.T, _ accountant.Ledger) {
			srv.CloseClientConnections()
			srv.Close()
		},
	})
}

// TestRemoteLedgerLostAck is the exactly-once property end to end: the
// sequencer admits a spend but its ack is lost (injected 500 after the
// real handler ran); the client retries the SAME op ID and must end up
// with exactly one debit.
func TestRemoteLedgerLostAck(t *testing.T) {
	svc := newService(t, t.TempDir())
	inner := ledgerd.NewHandler(svc)
	var dropNextAck atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dropNextAck.CompareAndSwap(true, false) {
			// Run the real admission, then lose the response on the way
			// back — the client sees a 500, the WAL saw the op.
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			http.Error(w, "injected ack loss", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	rl, err := accountant.OpenRemoteLedger(srv.URL, "lostack", budget, fastRemote())
	if err != nil {
		t.Fatalf("OpenRemoteLedger: %v", err)
	}
	defer rl.Close()

	dropNextAck.Store(true)
	if err := rl.Spend("q0", dp.Params{Epsilon: 0.1, Delta: 1e-6}); err != nil {
		t.Fatalf("spend through lost ack: %v", err)
	}
	if got := rl.OpCount(); got != 1 {
		t.Fatalf("op count %d, want exactly 1 (the retry must dedup, not double-debit)", got)
	}
	if got, want := rl.Spent(), (dp.Params{Epsilon: 0.1, Delta: 1e-6}); got != want {
		t.Fatalf("spent %v, want %v", got, want)
	}
}

// TestRemoteLedgerFencedLatches drives a sequencer restart under a live
// client: the stale epoch must latch the client fail-closed, and a
// fresh client must see the durable state.
func TestRemoteLedgerFencedLatches(t *testing.T) {
	dir := t.TempDir()
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	cost := dp.Params{Epsilon: 0.1, Delta: 1e-6}

	svc1, err := ledgerd.New(ledgerd.Options{Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var svc atomic.Pointer[ledgerd.Service]
	svc.Store(svc1)
	// One stable URL whose backing service is swapped mid-test — the
	// HTTP analogue of a sequencer restart behind a stable address.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ledgerd.NewHandler(svc.Load()).ServeHTTP(w, r)
	}))
	defer srv.Close()

	rl, err := accountant.OpenRemoteLedger(srv.URL, "fenced", budget, fastRemote())
	if err != nil {
		t.Fatalf("OpenRemoteLedger: %v", err)
	}
	defer rl.Close()
	if err := rl.Spend("q0", cost); err != nil {
		t.Fatalf("spend before restart: %v", err)
	}

	if err := svc1.Close(); err != nil {
		t.Fatalf("closing first incarnation: %v", err)
	}
	svc2 := newService(t, dir)
	svc.Store(svc2)

	// The client's pinned epoch is now stale: the sequencer fences the
	// spend and the client latches ErrLedgerFailed — nothing is released
	// on assumptions the restart may have invalidated.
	if err := rl.Spend("q1", cost); !errors.Is(err, accountant.ErrLedgerFailed) {
		t.Fatalf("spend across restart: got %v, want ErrLedgerFailed", err)
	}
	if err := rl.Spend("q2", cost); !errors.Is(err, accountant.ErrLedgerFailed) {
		t.Fatalf("latched spend: got %v, want ErrLedgerFailed", err)
	}

	// A fresh client re-attaches and sees every durably admitted op.
	rl2, err := accountant.OpenRemoteLedger(srv.URL, "fenced", budget, fastRemote())
	if err != nil {
		t.Fatalf("re-open after restart: %v", err)
	}
	defer rl2.Close()
	if got := rl2.OpCount(); got != 1 {
		t.Fatalf("replayed op count %d, want 1", got)
	}
	if err := rl2.Spend("q3", cost); err != nil {
		t.Fatalf("fresh client spend: %v", err)
	}
}

// TestHTTPProtocol exercises the wire layer directly: status codes and
// error codes are the contract RemoteLedger keys its fail-closed
// behavior on.
func TestHTTPProtocol(t *testing.T) {
	svc := newService(t, t.TempDir())
	srv := httptest.NewServer(ledgerd.NewHandler(svc))
	defer srv.Close()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, string(buf[:n])
	}

	status, body := post("/v1/ledgers/web/attach", `{"budget":{"epsilon":0.2,"delta":2e-6}}`)
	if status != http.StatusOK {
		t.Fatalf("attach: HTTP %d: %s", status, body)
	}
	epoch := svc.Epoch()

	status, body = post("/v1/ledgers/web/spend",
		fmt.Sprintf(`{"epoch":%q,"op_id":"c-1","label":"q0","cost":{"epsilon":0.1,"delta":1e-6}}`, epoch))
	if status != http.StatusOK {
		t.Fatalf("spend: HTTP %d: %s", status, body)
	}

	// Stale epoch → 409 epoch-fenced.
	status, body = post("/v1/ledgers/web/spend",
		`{"epoch":"0000000000000000:0","op_id":"c-2","label":"q1","cost":{"epsilon":0.1,"delta":1e-6}}`)
	if status != http.StatusConflict || !contains(body, ledgerd.CodeEpochFenced) {
		t.Fatalf("stale epoch: HTTP %d: %s, want 409 %s", status, body, ledgerd.CodeEpochFenced)
	}

	// Conflicting budget → 409 budget-mismatch.
	status, body = post("/v1/ledgers/web/attach", `{"budget":{"epsilon":9,"delta":2e-6}}`)
	if status != http.StatusConflict || !contains(body, ledgerd.CodeBudgetMismatch) {
		t.Fatalf("budget mismatch: HTTP %d: %s, want 409 %s", status, body, ledgerd.CodeBudgetMismatch)
	}

	// Drain the second half of the budget, then over-spend → 429.
	status, body = post("/v1/ledgers/web/spend",
		fmt.Sprintf(`{"epoch":%q,"op_id":"c-3","label":"q1","cost":{"epsilon":0.1,"delta":1e-6}}`, epoch))
	if status != http.StatusOK {
		t.Fatalf("second spend: HTTP %d: %s", status, body)
	}
	status, body = post("/v1/ledgers/web/spend",
		fmt.Sprintf(`{"epoch":%q,"op_id":"c-4","label":"q2","cost":{"epsilon":0.1,"delta":1e-6}}`, epoch))
	if status != http.StatusTooManyRequests || !contains(body, ledgerd.CodeBudgetExceeded) {
		t.Fatalf("over-spend: HTTP %d: %s, want 429 %s", status, body, ledgerd.CodeBudgetExceeded)
	}

	// Unknown field → 400 (a malformed spend must not run as whatever
	// its prefix parses as).
	status, body = post("/v1/ledgers/web/spend", `{"oops":1}`)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d: %s, want 400", status, body)
	}

	// Status and ops read back.
	resp, err := http.Get(srv.URL + "/v1/ledgers/web")
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status: HTTP %d", resp.StatusCode)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
