package release

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/hierarchy"
)

// TestWithBuilderIdenticalRelease pins Builder-backed pipelines to the
// default path: the same seed must produce byte-identical releases
// whether Phase 1 runs through a shared retained Builder (across two
// consecutive Runs) or a throwaway one.
func TestWithBuilderIdenticalRelease(t *testing.T) {
	t.Parallel()
	g, err := datagen.Generate(datagen.DBLPTiny(3))
	if err != nil {
		t.Fatal(err)
	}
	budget := dp.Params{Epsilon: 0.8, Delta: 1e-5}
	opts := func(extra ...Option) []Option {
		return append([]Option{
			WithRounds(5),
			WithSeed(11),
			WithPhase1Epsilon(0.1),
			WithCellHistograms(true),
		}, extra...)
	}

	plain, err := New(budget, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run(g)
	if err != nil {
		t.Fatal(err)
	}

	b := hierarchy.NewBuilder()
	defer b.Close()
	shared, err := New(budget, opts(WithBuilder(b))...)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		got, err := shared.Run(g)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if len(got.Counts.Levels) != len(want.Counts.Levels) {
			t.Fatalf("run %d: %d levels, want %d", run, len(got.Counts.Levels), len(want.Counts.Levels))
		}
		for i := range want.Counts.Levels {
			if got.Counts.Levels[i].NoisyCount != want.Counts.Levels[i].NoisyCount {
				t.Fatalf("run %d level %d: noisy count %v, want %v",
					run, i, got.Counts.Levels[i].NoisyCount, want.Counts.Levels[i].NoisyCount)
			}
		}
		for i := range want.Cells {
			for j := range want.Cells[i].Counts {
				if got.Cells[i].Counts[j] != want.Cells[i].Counts[j] {
					t.Fatalf("run %d cells %d[%d] differ", run, i, j)
				}
			}
		}
	}
	if _, err := New(budget, WithBuilder(nil)); err == nil {
		t.Error("nil builder accepted")
	}
}
