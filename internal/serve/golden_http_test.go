// Golden transcript tests live in the external test package because
// they exercise the public repro facade (SaveTSV) against the HTTP
// handler — the facade imports internal/serve, so an internal test
// would cycle.
package serve_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/bipartite"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/release"
	"repro/internal/serve"
)

// goldenServeTranscript pins the full HTTP conversation — ingest,
// session, level, marginal, top-k, budget — for the default strategy.
// It was captured before the strategy refactor; the strategy seam must
// never change a default-strategy byte on the wire. Re-pinned when the
// /budget durability panel grew the "backend" stamp ("mem" here): the
// noise and audit bytes were unchanged, only the durability JSON.
const goldenServeTranscript = "87d53447e76ddd006946c83089d458fceee257ff885f0ed1a45c6c7f3c20f9d7"

func goldenGraph(t *testing.T) *bipartite.Graph {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{
		Name: "test", NumLeft: 300, NumRight: 500, NumEdges: 3000,
		LeftZipf: 1.9, RightZipf: 2.8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestServeTranscriptGoldenPinned(t *testing.T) {
	t.Parallel()
	g := goldenGraph(t)

	reg, err := serve.Open(serve.Config{
		Budget:   dp.Params{Epsilon: 2, Delta: 1e-5},
		PerQuery: dp.Params{Epsilon: 0.05, Delta: 1e-7},
		Rounds:   6,
		Seed:     7,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	h := serve.NewHandler(reg)

	var tsv bytes.Buffer
	if err := repro.SaveTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}

	var transcript bytes.Buffer
	do := func(method, path, body string) string {
		t.Helper()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		if strings.HasPrefix(body, "{") {
			req.Header.Set("Content-Type", "application/json")
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != 200 && rr.Code != 201 {
			t.Fatalf("%s %s: status %d: %s", method, path, rr.Code, rr.Body.String())
		}
		fmt.Fprintf(&transcript, "%s %s\n%s\n", method, path, rr.Body.String())
		return rr.Body.String()
	}

	do("POST", "/v1/datasets/golden", tsv.String())
	sidBody := do("POST", "/v1/datasets/golden/sessions", `{"stream": 7}`)
	var sess struct {
		Session json.Number `json:"session"`
	}
	if err := json.Unmarshal([]byte(sidBody), &sess); err != nil {
		t.Fatal(err)
	}
	sid := sess.Session.String()
	do("POST", "/v1/sessions/"+sid+"/level", `{"level": 2}`)
	do("POST", "/v1/sessions/"+sid+"/marginal", `{"level": 2, "side": "left"}`)
	do("POST", "/v1/sessions/"+sid+"/topk", `{"level": 2, "side": "right", "k": 5}`)
	do("GET", "/v1/datasets/golden/budget", "")

	got := fmt.Sprintf("%x", sha256.Sum256(transcript.Bytes()))
	if got != goldenServeTranscript {
		t.Errorf("serve transcript hash = %s, want %s\ntranscript:\n%s",
			got, goldenServeTranscript, transcript.String())
	}
}

// TestHTTPIngestStrategy drives the ?strategy= ingest path for every
// registered strategy and checks the wire contract: the dataset
// response and /budget name non-default strategies and omit the key
// for the default; unknown names are refused with 400 bad-config.
func TestHTTPIngestStrategy(t *testing.T) {
	t.Parallel()
	g := goldenGraph(t)
	var tsv bytes.Buffer
	if err := repro.SaveTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}

	reg, err := serve.Open(serve.Config{
		Budget:   dp.Params{Epsilon: 4, Delta: 1e-5},
		PerQuery: dp.Params{Epsilon: 0.05, Delta: 1e-7},
		Rounds:   5,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	h := serve.NewHandler(reg)

	do := func(method, path, body string) (int, map[string]any) {
		t.Helper()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		if strings.HasPrefix(body, "{") {
			req.Header.Set("Content-Type", "application/json")
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		var m map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
			t.Fatalf("%s %s: non-JSON response %q", method, path, rr.Body.String())
		}
		return rr.Code, m
	}

	for _, name := range release.Strategies.Names() {
		code, resp := do("POST", "/v1/datasets/ds-"+name+"?strategy="+name, tsv.String())
		if code != 200 && code != 201 {
			t.Fatalf("%s: ingest status %d: %v", name, code, resp)
		}
		wantLabel := name
		if name == release.DefaultStrategyName {
			wantLabel = "" // absence IS the default on the wire
		}
		if got, _ := resp["strategy"].(string); got != wantLabel {
			t.Errorf("%s: ingest response strategy = %q, want %q", name, got, wantLabel)
		}
		code, budget := do("GET", "/v1/datasets/ds-"+name+"/budget", "")
		if code != 200 {
			t.Fatalf("%s: budget status %d: %v", name, code, budget)
		}
		if got, _ := budget["strategy"].(string); got != wantLabel {
			t.Errorf("%s: budget strategy = %q, want %q", name, got, wantLabel)
		}
	}

	code, resp := do("POST", "/v1/datasets/bad?strategy=no-such-strategy", tsv.String())
	if code != 400 {
		t.Errorf("unknown strategy ingest: status %d, want 400 (%v)", code, resp)
	}
	if got, _ := resp["code"].(string); got != "bad-config" {
		t.Errorf("unknown strategy ingest: error code %q, want bad-config", got)
	}
}
