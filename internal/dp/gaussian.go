package dp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Gaussian is the Gaussian mechanism: it guarantees (ε, δ)-DP for queries
// with bounded L2 sensitivity by adding N(0, σ²) noise. Two calibrations
// are provided:
//
//   - Classical (Dwork–Roth): σ = Δ2·√(2 ln(1.25/δ))/ε, valid for ε < 1.
//     This is the calibration the paper cites ([3]).
//   - Analytic (Balle–Wang 2018): the exact characterization of Gaussian
//     DP, valid for every ε > 0 and strictly tighter. Exposed as an
//     extension and compared in ablation A2.
type Gaussian struct {
	sigma float64
	src   *rng.Source
}

var _ Additive = (*Gaussian)(nil)

// ErrClassicalEpsilonRange reports an ε for which the classical Gaussian
// calibration is not valid.
var ErrClassicalEpsilonRange = errors.New(
	"dp: classical gaussian calibration requires epsilon < 1 (use NewGaussianAnalytic)")

// NewGaussian returns a classically calibrated Gaussian mechanism.
func NewGaussian(p Params, l2Sensitivity float64, src *rng.Source) (*Gaussian, error) {
	sigma, err := ClassicalGaussianSigma(p, l2Sensitivity)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, ErrNilSource
	}
	return &Gaussian{sigma: sigma, src: src}, nil
}

// NewGaussianAnalytic returns a Gaussian mechanism calibrated with the
// analytic (Balle–Wang) bound, valid for any ε > 0.
func NewGaussianAnalytic(p Params, l2Sensitivity float64, src *rng.Source) (*Gaussian, error) {
	sigma, err := AnalyticGaussianSigma(p, l2Sensitivity)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, ErrNilSource
	}
	return &Gaussian{sigma: sigma, src: src}, nil
}

// NewGaussianWithSigma returns a Gaussian mechanism with an explicit noise
// standard deviation, for callers that calibrate externally.
func NewGaussianWithSigma(sigma float64, src *rng.Source) (*Gaussian, error) {
	if !(sigma > 0) || math.IsInf(sigma, 0) || math.IsNaN(sigma) {
		return nil, fmt.Errorf("dp: sigma must be > 0 and finite (got %v)", sigma)
	}
	if src == nil {
		return nil, ErrNilSource
	}
	return &Gaussian{sigma: sigma, src: src}, nil
}

// Perturb returns value + N(0, σ²) noise.
func (m *Gaussian) Perturb(value float64) float64 {
	return value + m.src.NormalSigma(m.sigma)
}

// Scale returns the noise standard deviation σ.
func (m *Gaussian) Scale() float64 { return m.sigma }

// ExpectedAbsError returns E|noise| = σ·√(2/π).
func (m *Gaussian) ExpectedAbsError() float64 {
	return m.sigma * math.Sqrt(2/math.Pi)
}

// ConfidenceInterval returns the half-width w such that the true value
// lies within ±w of the answer with the given confidence level in (0, 1).
func (m *Gaussian) ConfidenceInterval(level float64) float64 {
	if !(level > 0 && level < 1) {
		return math.NaN()
	}
	// Invert the normal CDF by bisection on phi; precision far beyond
	// what utility reporting needs.
	target := 0.5 + level/2
	lo, hi := 0.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if phi(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return m.sigma * (lo + hi) / 2
}

// ClassicalGaussianSigma returns the Dwork–Roth σ for (ε, δ) and Δ2.
func ClassicalGaussianSigma(p Params, l2Sensitivity float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.Delta == 0 {
		return 0, ErrDeltaZero
	}
	if p.Epsilon >= 1 {
		return 0, fmt.Errorf("%w (got ε=%v)", ErrClassicalEpsilonRange, p.Epsilon)
	}
	if err := validateSensitivity(l2Sensitivity); err != nil {
		return 0, err
	}
	return l2Sensitivity * math.Sqrt(2*math.Log(1.25/p.Delta)) / p.Epsilon, nil
}

// AnalyticGaussianSigma returns the smallest σ for which the Gaussian
// mechanism with L2 sensitivity Δ2 satisfies (ε, δ)-DP, per the exact
// characterization of Balle & Wang (ICML 2018, Theorem 8):
//
//	δ(σ) = Φ(Δ/(2σ) − εσ/Δ) − e^ε · Φ(−Δ/(2σ) − εσ/Δ)
//
// δ(σ) is strictly decreasing in σ, so the calibration is a bisection.
func AnalyticGaussianSigma(p Params, l2Sensitivity float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.Delta == 0 {
		return 0, ErrDeltaZero
	}
	if err := validateSensitivity(l2Sensitivity); err != nil {
		return 0, err
	}
	deltaFor := func(sigma float64) float64 {
		return gaussianDelta(p.Epsilon, l2Sensitivity, sigma)
	}
	// Bracket the answer. The classical σ (when defined) is an upper
	// bound; otherwise grow until δ(σ) ≤ δ.
	lo := l2Sensitivity * 1e-6
	hi := l2Sensitivity
	for deltaFor(hi) > p.Delta {
		hi *= 2
		if math.IsInf(hi, 1) {
			return 0, fmt.Errorf("dp: analytic gaussian calibration failed to bracket for %v", p)
		}
	}
	for deltaFor(lo) <= p.Delta {
		lo /= 2
		if lo < math.SmallestNonzeroFloat64*1e6 {
			// Even (near) zero noise satisfies the guarantee; return hi's
			// bisection against this tiny lo below.
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if deltaFor(mid) > p.Delta {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// gaussianDelta returns the tightest δ for which N(0, σ²) noise gives
// (ε, δ)-DP at L2 sensitivity Δ.
func gaussianDelta(epsilon, sensitivity, sigma float64) float64 {
	a := sensitivity / (2 * sigma)
	b := epsilon * sigma / sensitivity
	return phi(a-b) - math.Exp(epsilon)*phi(-a-b)
}

// GaussianEpsilon inverts the analytic Gaussian characterization in the
// other direction: the smallest ε for which N(0, σ²) noise at L2
// sensitivity Δ satisfies (ε, δ)-DP. Used to report honest per-release
// budgets when the noise scale was fixed externally (e.g. by an RDP
// accountant).
func GaussianEpsilon(sigma, l2Sensitivity, delta float64) (float64, error) {
	if !(sigma > 0) || math.IsInf(sigma, 0) || math.IsNaN(sigma) {
		return 0, fmt.Errorf("dp: sigma must be > 0 and finite (got %v)", sigma)
	}
	if err := validateSensitivity(l2Sensitivity); err != nil {
		return 0, err
	}
	if !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("%w (got %v)", ErrDelta, delta)
	}
	// gaussianDelta is decreasing in ε; bisect.
	lo, hi := 0.0, 1.0
	for gaussianDelta(hi, l2Sensitivity, sigma) > delta {
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("dp: gaussian epsilon did not bracket (σ=%v, Δ=%v, δ=%v)", sigma, l2Sensitivity, delta)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if gaussianDelta(mid, l2Sensitivity, sigma) > delta {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
