// Package partition implements Phase 1 of the paper's disclosure pipeline:
// the specialization step that splits a node side in two, selected through
// the exponential mechanism so the split itself is differentially private.
//
// A bisector sees only an ordered slice of per-item weights (each item is a
// node of the cell being specialized; its weight is the number of
// associations it contributes to the cell) and chooses a cut index k: items
// [0,k) form the first subgroup and [k,n) the second. The private bisector
// scores each cut by edge balance — utility(k) = −|S_k − (S_n − S_k)| where
// S_k is the prefix weight sum — and samples a cut through the exponential
// mechanism. Adding or removing a single association changes any prefix sum
// by at most 1, so the balance utility has sensitivity 1.
//
// Non-private baselines (deterministic balanced cut, uniform random cut,
// midpoint cut) support ablation A3 in DESIGN.md.
package partition

import (
	"errors"
	"fmt"

	"repro/internal/dp"
	"repro/internal/rng"
)

// Errors returned by bisectors.
var (
	// ErrTooSmall reports a cell with fewer than two items, which cannot
	// be split. Callers treat it as "stop specializing this branch".
	ErrTooSmall = errors.New("partition: fewer than two items to bisect")
	// ErrNegativeWeight reports an item with a negative weight.
	ErrNegativeWeight = errors.New("partition: item weights must be non-negative")
)

// Bisector chooses a cut index in [1, n-1] for a weighted item sequence.
type Bisector interface {
	// Bisect returns the cut index for the given per-item weights.
	Bisect(weights []int64) (int, error)
	// Name identifies the strategy in experiment output.
	Name() string
}

// validate rejects degenerate inputs shared by all bisectors.
func validate(weights []int64) error {
	if len(weights) < 2 {
		return fmt.Errorf("%w (n=%d)", ErrTooSmall, len(weights))
	}
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("%w (item %d = %d)", ErrNegativeWeight, i, w)
		}
	}
	return nil
}

// balanceUtilities returns utility(k) = -|S_k - (S_n - S_k)| for every cut
// k in [1, n-1], as float64 for the exponential mechanism.
func balanceUtilities(weights []int64) []float64 {
	n := len(weights)
	var total int64
	for _, w := range weights {
		total += w
	}
	utilities := make([]float64, n-1)
	var prefix int64
	for k := 1; k < n; k++ {
		prefix += weights[k-1]
		imbalance := prefix - (total - prefix)
		if imbalance < 0 {
			imbalance = -imbalance
		}
		utilities[k-1] = -float64(imbalance)
	}
	return utilities
}

// ExpMechBisector selects the cut through the exponential mechanism with
// the balance utility, consuming ε per invocation.
type ExpMechBisector struct {
	mech *dp.Exponential
	eps  float64
}

var _ Bisector = (*ExpMechBisector)(nil)

// NewExpMechBisector returns a private bisector spending epsilon per cut.
func NewExpMechBisector(epsilon float64, src *rng.Source) (*ExpMechBisector, error) {
	mech, err := dp.NewExponential(epsilon, 1, src)
	if err != nil {
		return nil, fmt.Errorf("partition: building exponential mechanism: %w", err)
	}
	return &ExpMechBisector{mech: mech, eps: epsilon}, nil
}

// Epsilon returns the per-cut privacy cost.
func (b *ExpMechBisector) Epsilon() float64 { return b.eps }

// Bisect implements Bisector.
func (b *ExpMechBisector) Bisect(weights []int64) (int, error) {
	if err := validate(weights); err != nil {
		return 0, err
	}
	idx, err := b.mech.Select(balanceUtilities(weights))
	if err != nil {
		return 0, err
	}
	return idx + 1, nil
}

// Name implements Bisector.
func (b *ExpMechBisector) Name() string { return "expmech" }

// BalancedBisector deterministically picks the most edge-balanced cut. It
// is the non-private skyline for ablation A3.
type BalancedBisector struct{}

var _ Bisector = BalancedBisector{}

// Bisect implements Bisector.
func (BalancedBisector) Bisect(weights []int64) (int, error) {
	if err := validate(weights); err != nil {
		return 0, err
	}
	utilities := balanceUtilities(weights)
	best := 0
	for i, u := range utilities {
		if u > utilities[best] {
			best = i
		}
	}
	return best + 1, nil
}

// Name implements Bisector.
func (BalancedBisector) Name() string { return "balanced" }

// RandomBisector picks a uniform random cut; it models specialization with
// no utility signal at all.
type RandomBisector struct {
	src *rng.Source
}

var _ Bisector = (*RandomBisector)(nil)

// NewRandomBisector returns a RandomBisector drawing from src.
func NewRandomBisector(src *rng.Source) (*RandomBisector, error) {
	if src == nil {
		return nil, dp.ErrNilSource
	}
	return &RandomBisector{src: src}, nil
}

// Bisect implements Bisector.
func (b *RandomBisector) Bisect(weights []int64) (int, error) {
	if err := validate(weights); err != nil {
		return 0, err
	}
	return 1 + b.src.Intn(len(weights)-1), nil
}

// Name implements Bisector.
func (b *RandomBisector) Name() string { return "random" }

// MidpointBisector always cuts at n/2, balancing item counts rather than
// edge weight.
type MidpointBisector struct{}

var _ Bisector = MidpointBisector{}

// Bisect implements Bisector.
func (MidpointBisector) Bisect(weights []int64) (int, error) {
	if err := validate(weights); err != nil {
		return 0, err
	}
	return len(weights) / 2, nil
}

// Name implements Bisector.
func (MidpointBisector) Name() string { return "midpoint" }

// CutQuality describes how balanced a chosen cut is, for diagnostics and
// experiment reporting.
type CutQuality struct {
	// LeftWeight and RightWeight are the summed weights of the two parts.
	LeftWeight  int64
	RightWeight int64
	// Imbalance is |LeftWeight − RightWeight| / TotalWeight in [0, 1];
	// zero for a perfectly balanced cut. It is 0 when the total is 0.
	Imbalance float64
}

// Quality evaluates a cut.
func Quality(weights []int64, cut int) (CutQuality, error) {
	if err := validate(weights); err != nil {
		return CutQuality{}, err
	}
	if cut < 1 || cut >= len(weights) {
		return CutQuality{}, fmt.Errorf("partition: cut %d outside [1,%d)", cut, len(weights))
	}
	var q CutQuality
	for i, w := range weights {
		if i < cut {
			q.LeftWeight += w
		} else {
			q.RightWeight += w
		}
	}
	if total := q.LeftWeight + q.RightWeight; total > 0 {
		diff := q.LeftWeight - q.RightWeight
		if diff < 0 {
			diff = -diff
		}
		q.Imbalance = float64(diff) / float64(total)
	}
	return q, nil
}
