package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/accountant"
	"repro/internal/bipartite"
	"repro/internal/datagen"
	"repro/internal/dp"
)

// durableConfig is testConfig with a durable ledger dir and a budget for
// exactly 4 marginal queries.
func durableConfig(t testing.TB) Config {
	cfg := testConfig()
	cfg.Budget = dp.Params{Epsilon: 0.1, Delta: 1e-5}
	cfg.PerQuery = dp.Params{Epsilon: 0.025, Delta: 1e-6}
	cfg.LedgerDir = t.TempDir()
	return cfg
}

// TestDurableRestartKeepsBudgetSpent is the core restart-semantics test:
// drain a dataset to ErrBudgetExceeded, close the registry, reopen from
// the same ledger dir, and assert the budget is still exhausted with a
// bit-identical audit trail.
func TestDurableRestartKeepsBudgetSpent(t *testing.T) {
	t.Parallel()
	cfg := durableConfig(t)

	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Durability(); !ok {
		t.Fatal("dataset under LedgerDir reports no durable ledger")
	}
	sess := ds.SessionAt(1)
	for i := 0; i < 4; i++ {
		if _, err := sess.Marginal(1, bipartite.Left); err != nil {
			t.Fatalf("marginal %d: %v", i, err)
		}
	}
	if _, err := sess.Marginal(1, bipartite.Left); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("drain: got %v, want ErrBudgetExceeded", err)
	}
	spent, ops := ds.Spent(), ds.Ops()
	if err := reg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Durable datasets fail closed after the registry closes their WAL.
	if _, err := sess.Marginal(2, bipartite.Left); !errors.Is(err, accountant.ErrLedgerClosed) {
		t.Fatalf("query after Close: got %v, want ErrLedgerClosed", err)
	}

	// "Restart": a fresh registry over the same ledger dir re-ingests the
	// same data and must land on the same WAL file, replaying the spend.
	reg2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg2.Close() })
	ds2, err := reg2.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatalf("re-ingest after restart: %v", err)
	}
	if got := ds2.Spent(); got != spent {
		t.Fatalf("restarted Spent = %s, want %s", got, spent)
	}
	if got := ds2.Ops(); !reflect.DeepEqual(got, ops) {
		t.Fatalf("restarted audit trail diverges:\n got %+v\nwant %+v", got, ops)
	}
	st, ok := ds2.Durability()
	if !ok || st.ReplayedOps != len(ops) {
		t.Fatalf("Durability = %+v, ok=%v; want %d replayed ops", st, ok, len(ops))
	}
	if _, err := ds2.SessionAt(1).Marginal(1, bipartite.Left); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("exhausted budget re-armed across restart: %v", err)
	}
}

// TestDurablePhase1NotDoubleCharged: re-ingesting the same data must not
// debit the phase-1 specialization cost a second time.
func TestDurablePhase1NotDoubleCharged(t *testing.T) {
	t.Parallel()
	cfg := durableConfig(t)
	cfg.Budget = dp.Params{Epsilon: 1.0, Delta: 1e-5}
	cfg.Phase1Epsilon = 0.01 // 2·5·0.01 = 0.1 at ingest

	open := func() dp.Params {
		reg, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer reg.Close()
		ds, err := reg.AddDataset("tiny", testSource(t))
		if err != nil {
			t.Fatal(err)
		}
		return ds.Spent()
	}
	first := open()
	if first.Epsilon <= 0 {
		t.Fatal("phase-1 ingest debited nothing")
	}
	if second := open(); second != first {
		t.Fatalf("re-ingest changed spent: %s → %s (phase-1 double-charged)", first, second)
	}
}

// TestDurableTornTailAtServeLayer truncates the WAL mid-record between
// restarts; reopen must succeed with the valid prefix.
func TestDurableTornTailAtServeLayer(t *testing.T) {
	t.Parallel()
	cfg := durableConfig(t)

	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	sess := ds.SessionAt(1)
	for i := 0; i < 4; i++ {
		if _, err := sess.Marginal(1, bipartite.Left); err != nil {
			t.Fatalf("marginal %d: %v", i, err)
		}
	}
	reg.Close()

	wals, err := filepath.Glob(filepath.Join(cfg.LedgerDir, "*.wal"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("want exactly one WAL, got %v (err %v)", wals, err)
	}
	fi, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wals[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	reg2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg2.Close() })
	ds2, err := reg2.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatalf("re-ingest over torn WAL: %v", err)
	}
	// The tear ate the 4th marginal's record; the prefix (3 ops) is the ledger.
	if got := ds2.OpCount(); got != 3 {
		t.Fatalf("OpCount after torn-tail replay = %d, want 3", got)
	}
}

// TestDurableFailClosedServing injects a WAL write failure under live
// serving: the query must fail without advancing the session sequence,
// and the dataset must refuse all further spends.
func TestDurableFailClosedServing(t *testing.T) {
	t.Parallel()
	cfg := durableConfig(t)
	var arm failNextWrite
	cfg.ledgerOpenWriter = arm.open

	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	ds, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	sess := ds.SessionAt(1)
	if _, err := sess.Marginal(1, bipartite.Left); err != nil {
		t.Fatalf("healthy marginal: %v", err)
	}
	spent, seq := ds.Spent(), sess.Seq()

	arm.fail.Store(true)
	if _, err := sess.Marginal(1, bipartite.Left); !errors.Is(err, accountant.ErrLedgerFailed) {
		t.Fatalf("query over failed WAL: got %v, want ErrLedgerFailed", err)
	}
	if got := sess.Seq(); got != seq {
		t.Fatalf("failed spend advanced seq %d → %d", seq, got)
	}
	if got := ds.Spent(); got != spent {
		t.Fatalf("failed spend changed Spent %s → %s", spent, got)
	}
	// The failure latches even after the injector heals: no spend is
	// admitted past a possibly-torn WAL tail.
	arm.fail.Store(false)
	if _, err := sess.Marginal(1, bipartite.Left); !errors.Is(err, accountant.ErrLedgerFailed) {
		t.Fatalf("query after latched failure: got %v, want ErrLedgerFailed", err)
	}
	st, _ := ds.Durability()
	if st.Err == "" {
		t.Fatal("Durability.Err empty after latched failure")
	}
}

// TestDurableDifferentDataFreshLedger: re-ingesting DIFFERENT data under
// a reused name must key a fresh ledger file, not inherit the old spend.
func TestDurableDifferentDataFreshLedger(t *testing.T) {
	t.Parallel()
	cfg := durableConfig(t)

	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	ds, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.SessionAt(1).Marginal(1, bipartite.Left); err != nil {
		t.Fatal(err)
	}
	if err := reg.RemoveDataset("tiny"); err != nil {
		t.Fatal(err)
	}

	gen := datagen.Config{
		Name: "other", NumLeft: 80, NumRight: 90, NumEdges: 900,
		LeftZipf: 1.5, RightZipf: 2.0, Seed: 99,
	}
	edges, nl, nr, err := datagen.EdgeList(gen)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := reg.AddDataset("tiny", bipartite.NewSliceSource(nl, nr, edges))
	if err != nil {
		t.Fatal(err)
	}
	if got := ds2.Spent(); got != (dp.Params{}) {
		t.Fatalf("different data inherited spend %s", got)
	}
	wals, _ := filepath.Glob(filepath.Join(cfg.LedgerDir, "*.wal"))
	if len(wals) != 2 {
		t.Fatalf("want 2 ledger files (one per fingerprint), got %v", wals)
	}
}

// TestDurableRemoveReopensSameBudget: RemoveDataset releases the flock
// so re-adding the SAME data reopens the same file with its spend.
func TestDurableRemoveReopensSameBudget(t *testing.T) {
	t.Parallel()
	cfg := durableConfig(t)

	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	ds, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.SessionAt(1).Marginal(1, bipartite.Left); err != nil {
		t.Fatal(err)
	}
	spent := ds.Spent()
	if err := reg.RemoveDataset("tiny"); err != nil {
		t.Fatal(err)
	}
	ds2, err := reg.AddDataset("tiny", testSource(t))
	if err != nil {
		t.Fatalf("re-add after remove: %v", err)
	}
	if got := ds2.Spent(); got != spent {
		t.Fatalf("re-added Spent = %s, want %s", got, spent)
	}
}

// TestBudgetEndpointDurability: /budget exposes the durability panel for
// durable datasets and {"durable": false} for in-memory ones.
func TestBudgetEndpointDurability(t *testing.T) {
	t.Parallel()
	check := func(cfg Config, wantDurable bool) {
		reg, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { reg.Close() })
		if _, err := reg.AddDataset("tiny", testSource(t)); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewHandler(reg))
		t.Cleanup(srv.Close)
		resp, err := srv.Client().Get(srv.URL + "/v1/datasets/tiny/budget")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Durability struct {
				Durable    bool   `json:"durable"`
				Path       string `json:"path"`
				Policy     string `json:"policy"`
				WALRecords *int   `json:"wal_records"`
			} `json:"durability"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Durability.Durable != wantDurable {
			t.Fatalf("durability.durable = %v, want %v", body.Durability.Durable, wantDurable)
		}
		if wantDurable {
			if body.Durability.Path == "" || body.Durability.Policy != string(accountant.FsyncAlways) {
				t.Fatalf("durable status incomplete: %+v", body.Durability)
			}
			if body.Durability.WALRecords == nil {
				t.Fatal("durable status missing wal_records")
			}
		} else if body.Durability.WALRecords != nil {
			t.Fatal("in-memory dataset leaked durable status fields")
		}
	}
	check(durableConfig(t), true)
	check(testConfig(), false)
}

// TestDurableBadFsyncPolicyRejected: Open must refuse an unknown policy.
func TestDurableBadFsyncPolicyRejected(t *testing.T) {
	t.Parallel()
	cfg := durableConfig(t)
	cfg.LedgerFsync = "sometimes"
	if _, err := Open(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Open with bad fsync policy: got %v, want ErrBadConfig", err)
	}
}

// failNextWrite is a serve-layer fault injector for cfg.ledgerOpenWriter:
// real files until fail is set, then every write errors.
type failNextWrite struct {
	fail atomic.Bool
}

func (a *failNextWrite) open(path string) (accountant.WriteSyncer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &failingWriter{f: f, fail: &a.fail}, nil
}

type failingWriter struct {
	f    *os.File
	fail *atomic.Bool
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.fail.Load() {
		return 0, fmt.Errorf("injected serve-layer write failure")
	}
	return w.f.Write(p)
}

func (w *failingWriter) Sync() error {
	if w.fail.Load() {
		return fmt.Errorf("injected serve-layer sync failure")
	}
	return w.f.Sync()
}

func (w *failingWriter) Close() error { return w.f.Close() }
