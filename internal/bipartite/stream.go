package bipartite

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// EdgeSource is a resettable stream of association records, the substrate
// of the chunked release pipeline: hierarchy.BuildFromEdges consumes one
// source in two passes (degrees, then cell counts) so a beyond-RAM edge
// file is never materialized as a Graph — peak memory is O(chunk + sides),
// not O(E).
//
// Contract:
//
//   - NextChunk fills dst[:n] with the next n > 0 edges and returns a nil
//     error, or returns n == 0 with io.EOF once the stream is exhausted
//     (or another error on failure). It never returns 0 edges with a nil
//     error.
//   - Reset rewinds the source to its first edge. Replays must yield the
//     same edge sequence, so the two build passes see one dataset.
//   - Sides reports the declared node counts when the source knows them
//     (known == false otherwise, and consumers size by the largest id
//     seen). Declared sides may exceed the largest referenced id — that is
//     how isolated nodes survive streaming.
//
// Sources are not safe for concurrent use; give each goroutine its own
// (SliceSource cursors over one shared edge slice are the cheap way to fan
// out). A source must yield each distinct association exactly once:
// consumers count every edge they see, whereas the in-memory Builder
// deduplicates, so duplicates would skew a streamed build. SaveTSV output,
// the binary codec and the datagen stream satisfy this by construction.
type EdgeSource interface {
	NextChunk(dst []Edge) (int, error)
	Reset() error
	Sides() (numLeft, numRight int32, known bool)
}

// DefaultChunkEdges is the chunk capacity consumers use when they have no
// reason to pick another: 8192 edges = 64 KiB per buffer.
const DefaultChunkEdges = 8192

// errZeroChunk guards consumers against spinning on an empty buffer.
var errZeroChunk = errors.New("bipartite: NextChunk called with an empty destination buffer")

// ---------------------------------------------------------------------------
// SliceSource

// SliceSource streams an in-memory edge slice. It is the cheap fan-out
// cursor: many SliceSources can share one immutable backing slice.
type SliceSource struct {
	numLeft, numRight int32
	edges             []Edge
	next              int
}

// NewSliceSource returns a source over edges with declared side sizes
// (which, as everywhere, may exceed the largest referenced id to encode
// isolated nodes). The slice is not copied and must not change while the
// source is in use.
func NewSliceSource(numLeft, numRight int32, edges []Edge) *SliceSource {
	return &SliceSource{numLeft: numLeft, numRight: numRight, edges: edges}
}

// NextChunk implements EdgeSource.
func (s *SliceSource) NextChunk(dst []Edge) (int, error) {
	if len(dst) == 0 {
		return 0, errZeroChunk
	}
	if s.next >= len(s.edges) {
		return 0, io.EOF
	}
	n := copy(dst, s.edges[s.next:])
	s.next += n
	return n, nil
}

// Reset implements EdgeSource.
func (s *SliceSource) Reset() error { s.next = 0; return nil }

// Sides implements EdgeSource.
func (s *SliceSource) Sides() (int32, int32, bool) { return s.numLeft, s.numRight, true }

// ---------------------------------------------------------------------------
// GraphSource

// GraphSource streams the edges of a built Graph in left-major order
// without copying them — the bridge for running the streamed build path
// (or verifying it) against a graph already in memory.
type GraphSource struct {
	g   *Graph
	off []int64
	adj []int32
	l   int32 // current left node
	e   int64 // next edge index into adj
}

// NewGraphSource returns a source over g's associations.
func NewGraphSource(g *Graph) *GraphSource {
	off, adj := g.AdjacencyView(Left)
	return &GraphSource{g: g, off: off, adj: adj}
}

// NextChunk implements EdgeSource.
func (s *GraphSource) NextChunk(dst []Edge) (int, error) {
	if len(dst) == 0 {
		return 0, errZeroChunk
	}
	if s.e >= int64(len(s.adj)) {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && s.e < int64(len(s.adj)) {
		for s.e >= s.off[s.l+1] {
			s.l++
		}
		dst[n] = Edge{Left: s.l, Right: s.adj[s.e]}
		n++
		s.e++
	}
	return n, nil
}

// Reset implements EdgeSource.
func (s *GraphSource) Reset() error { s.l, s.e = 0, 0; return nil }

// Sides implements EdgeSource.
func (s *GraphSource) Sides() (int32, int32, bool) {
	return int32(s.g.NumLeft()), int32(s.g.NumRight()), true
}

// ---------------------------------------------------------------------------
// TSVEdgeSource

// TSVEdgeSource streams "left<TAB>right" lines as edge chunks without
// holding the file's pairs in memory. Mode resolution matches LoadTSV: a
// "# gdp-tsv mode=" first line fixes the interpretation; otherwise the
// source sniffs the file once at construction (an extra sequential pass)
// and treats it as dense ids only when every field is a canonical
// non-negative integer. In name mode labels are interned incrementally —
// the intern tables persist across Reset, so both build passes see one id
// space and memory stays O(distinct names), never O(E) pairs.
//
// Duplicate data lines are yielded as-is: detecting them would need the
// O(E) pair set streaming exists to avoid. A file with repeated pairs
// therefore double-counts in streamed builds, where LoadTSV's Builder
// would deduplicate — deduplicate such files first (e.g. sort -u), or run
// gdpbench -edges with -streamverify, which catches the divergence.
// SaveTSV output is duplicate-free by construction.
type TSVEdgeSource struct {
	rs     io.ReadSeeker
	sc     *bufio.Scanner
	lineNo int
	done   bool

	mode       tsvMode // resolved to tsvIDs or tsvNames before serving
	leftIndex  map[string]int32
	rightIndex map[string]int32

	numLeft, numRight int32
	sized             bool
}

// NewTSVEdgeSource returns a source over the TSV stream in rs, which is
// read from offset zero. Without a mode header the whole file is scanned
// once up front to decide the mode (and, in id mode, the side sizes).
func NewTSVEdgeSource(rs io.ReadSeeker) (*TSVEdgeSource, error) {
	s := &TSVEdgeSource{rs: rs}
	if err := s.resolveMode(); err != nil {
		return nil, err
	}
	if err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// resolveMode reads the header line or, absent one, sniffs the whole file.
func (s *TSVEdgeSource) resolveMode() error {
	if _, err := s.rs.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("bipartite: seeking tsv: %w", err)
	}
	sc := newTSVScanner(s.rs)
	lineNo := 0
	numeric := true
	var maxL, maxR int32 = -1, -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			if lineNo == 1 {
				m, ok, err := parseTSVHeader(line)
				if err != nil {
					return err
				}
				if ok {
					s.mode = m
					return nil // header decides; no sniff pass needed
				}
			}
			continue
		}
		l, r, err := splitTSVFields(line)
		if err != nil {
			return fmt.Errorf("bipartite: tsv line %d: %v", lineNo, err)
		}
		if numeric {
			lv, lok := parseID(l)
			rv, rok := parseID(r)
			if !lok || !rok {
				numeric = false
			} else {
				if lv > maxL {
					maxL = lv
				}
				if rv > maxR {
					maxR = rv
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return wrapTSVScanErr(err, lineNo)
	}
	if numeric {
		s.mode = tsvIDs
		s.numLeft, s.numRight = maxL+1, maxR+1
		s.sized = true
	} else {
		s.mode = tsvNames
	}
	return nil
}

// NextChunk implements EdgeSource.
func (s *TSVEdgeSource) NextChunk(dst []Edge) (int, error) {
	if len(dst) == 0 {
		return 0, errZeroChunk
	}
	if s.done {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lf, rf, err := splitTSVFields(line)
		if err != nil {
			return n, fmt.Errorf("bipartite: tsv line %d: %v", s.lineNo, err)
		}
		var e Edge
		if s.mode == tsvIDs {
			l, err := parseNodeID(lf)
			if err != nil {
				return n, fmt.Errorf("bipartite: tsv line %d: %v", s.lineNo, err)
			}
			r, err := parseNodeID(rf)
			if err != nil {
				return n, fmt.Errorf("bipartite: tsv line %d: %v", s.lineNo, err)
			}
			e = Edge{Left: l, Right: r}
			if l >= s.numLeft {
				s.numLeft = l + 1
			}
			if r >= s.numRight {
				s.numRight = r + 1
			}
		} else {
			e = Edge{Left: s.intern(&s.leftIndex, lf), Right: s.intern(&s.rightIndex, rf)}
		}
		dst[n] = e
		n++
	}
	if n == len(dst) {
		return n, nil
	}
	if err := s.sc.Err(); err != nil {
		return n, wrapTSVScanErr(err, s.lineNo)
	}
	s.done = true
	if s.mode == tsvNames {
		s.numLeft = int32(len(s.leftIndex))
		s.numRight = int32(len(s.rightIndex))
	}
	s.sized = true
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// intern resolves a label to its dense id, assigning ids in
// first-appearance order — the same order LoadTSV's Builder would.
func (s *TSVEdgeSource) intern(index *map[string]int32, name string) int32 {
	if *index == nil {
		*index = make(map[string]int32)
	}
	id, ok := (*index)[name]
	if !ok {
		id = int32(len(*index))
		(*index)[name] = id
	}
	return id
}

// Reset implements EdgeSource. Intern tables survive, so replayed passes
// map names to the same ids.
func (s *TSVEdgeSource) Reset() error {
	if _, err := s.rs.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("bipartite: seeking tsv: %w", err)
	}
	s.sc = newTSVScanner(s.rs)
	s.lineNo = 0
	s.done = false
	return nil
}

// Sides implements EdgeSource. Sizes are known up front for id-mode files
// (the sniff pass measures them) and after the first complete pass in name
// mode.
func (s *TSVEdgeSource) Sides() (int32, int32, bool) {
	return s.numLeft, s.numRight, s.sized
}

// ---------------------------------------------------------------------------
// BinaryEdgeSource

// BinaryEdgeSource streams edges out of the package's compact binary
// format (EncodeBinary) by walking the delta-encoded adjacency rows
// directly — the graph's CSR arrays are never rebuilt. Node labels, when
// present, trail the edge section and are not decoded. The format stores
// each association exactly once, already deduplicated.
type BinaryEdgeSource struct {
	rs io.ReadSeeker
	br *bufio.Reader

	numLeft, numRight int64

	l    int64 // current left node
	deg  uint64
	prev int64
	done bool
}

// NewBinaryEdgeSource returns a source over the binary graph stream in rs,
// which is read from offset zero.
func NewBinaryEdgeSource(rs io.ReadSeeker) (*BinaryEdgeSource, error) {
	s := &BinaryEdgeSource{rs: rs}
	if err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset implements EdgeSource: it seeks back to the start and re-reads the
// header.
func (s *BinaryEdgeSource) Reset() error {
	if _, err := s.rs.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("bipartite: seeking binary graph: %w", err)
	}
	s.br = bufio.NewReader(s.rs)
	var magic [4]byte
	if _, err := io.ReadFull(s.br, magic[:]); err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if magic != binaryMagic {
		return fmt.Errorf("%w: magic %q", ErrBadFormat, magic[:])
	}
	if _, err := binary.ReadUvarint(s.br); err != nil { // flags
		return fmt.Errorf("%w: flags: %v", ErrBadFormat, err)
	}
	var err error
	if s.numLeft, err = readCount(s.br, "numLeft"); err != nil {
		return err
	}
	if s.numRight, err = readCount(s.br, "numRight"); err != nil {
		return err
	}
	s.l, s.deg, s.prev = -1, 0, -1
	s.done = false
	return nil
}

// NextChunk implements EdgeSource.
func (s *BinaryEdgeSource) NextChunk(dst []Edge) (int, error) {
	if len(dst) == 0 {
		return 0, errZeroChunk
	}
	if s.done {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) {
		for s.deg == 0 {
			if s.l+1 >= s.numLeft {
				s.done = true
				if n == 0 {
					return 0, io.EOF
				}
				return n, nil
			}
			s.l++
			deg, err := binary.ReadUvarint(s.br)
			if err != nil {
				return n, fmt.Errorf("%w: degree of left %d: %v", ErrBadFormat, s.l, err)
			}
			if deg > uint64(s.numRight) {
				return n, fmt.Errorf("%w: degree %d exceeds right side %d", ErrBadFormat, deg, s.numRight)
			}
			s.deg = deg
			s.prev = -1
		}
		delta, err := binary.ReadUvarint(s.br)
		if err != nil {
			return n, fmt.Errorf("%w: neighbor of left %d: %v", ErrBadFormat, s.l, err)
		}
		var r int64
		if s.prev < 0 {
			r = int64(delta)
		} else {
			r = s.prev + 1 + int64(delta)
		}
		if r >= s.numRight {
			return n, fmt.Errorf("%w: neighbor %d out of range", ErrBadFormat, r)
		}
		dst[n] = Edge{Left: int32(s.l), Right: int32(r)}
		n++
		s.prev = r
		s.deg--
	}
	return n, nil
}

// Sides implements EdgeSource; the binary header declares both sizes.
func (s *BinaryEdgeSource) Sides() (int32, int32, bool) {
	return int32(s.numLeft), int32(s.numRight), true
}

// ---------------------------------------------------------------------------
// Helpers over sources

// ForEachChunk drains src from its current position, calling fn once per
// non-empty chunk (the slice is only valid during the call). It owns the
// EdgeSource loop contract in one place: io.EOF ends the drain cleanly,
// other errors propagate, and a 0-edge chunk with a nil error — a
// misbehaving source that would spin its consumer — is rejected.
func ForEachChunk(src EdgeSource, buf []Edge, fn func(chunk []Edge) error) error {
	for {
		n, err := src.NextChunk(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("bipartite: edge source returned an empty chunk without error")
		}
		if err := fn(buf[:n]); err != nil {
			return err
		}
	}
}

// ReadAllEdges drains src from its current position and returns the
// remaining edges — a convenience for tests and small inputs; it defeats
// the purpose of streaming for large ones.
func ReadAllEdges(src EdgeSource) ([]Edge, error) {
	var out []Edge
	err := ForEachChunk(src, make([]Edge, DefaultChunkEdges), func(chunk []Edge) error {
		out = append(out, chunk...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
