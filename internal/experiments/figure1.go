package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// PaperFigure1Reference holds the RER values the paper reports for
// Figure 1 at εg = 0.999 on full-scale DBLP, keyed by information level.
// These anchor the paper-vs-measured comparison in EXPERIMENTS.md; exact
// values are not expected to match (different substrate, different scale)
// but the shape — roughly 3–4× error decay per privilege level — must.
var PaperFigure1Reference = map[int]float64{
	7: 0.35,
	6: 0.11,
	5: 0.04,
	2: 0.0033,
	1: 0.002,
}

// Figure1Config fully specifies the Figure 1 reproduction.
type Figure1Config struct {
	// Dataset is the synthetic DBLP stand-in.
	Dataset datagen.Config
	// Rounds is the number of specialization rounds (paper: 9).
	Rounds int
	// Levels are the released information levels (paper: 0..7).
	Levels []int
	// EpsGrid is the εg sweep (paper: 0.1..1).
	EpsGrid []float64
	// Delta is the Gaussian δ (the paper does not report one; DESIGN.md
	// pins 1e-5).
	Delta float64
	// Trials averages the RER over this many independent noise draws.
	Trials int
	// Phase1Epsilon is the per-cut exponential-mechanism budget; 0 uses
	// the non-private balanced baseline.
	Phase1Epsilon float64
	// Model and Calib select adjacency semantics and noise calibration.
	Model core.GroupModel
	Calib core.Calibration
	// Seed drives all randomness.
	Seed uint64
	// Workers fans independent trials across goroutine lanes; each lane's
	// share of the budget is then spent inside the trial, on the
	// hierarchy build and on the εg × level sweep. The produced figures
	// are bit-identical for any value.
	Workers int
	// Stream builds every trial hierarchy through the chunked
	// hierarchy.BuildFromEdges path over the synthesized edge list instead
	// of materializing a bipartite.Graph (quick runs default to this —
	// synthesis then skips the Builder's dedup sort and both CSR
	// directions). The produced figures are bit-identical either way.
	Stream bool
}

// DefaultFigure1Config mirrors the paper's setup on the scaled dataset.
func DefaultFigure1Config(opts Options) (Figure1Config, error) {
	ds, err := opts.dataset()
	if err != nil {
		return Figure1Config{}, err
	}
	r := rounds(opts.Quick)
	return Figure1Config{
		Dataset:       ds,
		Rounds:        r,
		Levels:        levelsFor(r),
		EpsGrid:       epsGrid(opts.Quick),
		Delta:         1e-5,
		Trials:        opts.trials(20, 3),
		Phase1Epsilon: 0.1,
		Model:         core.ModelCells,
		Calib:         core.CalibrationClassical,
		Seed:          opts.Seed,
		Workers:       opts.Workers,
		Stream:        opts.Quick,
	}, nil
}

// Figure1Result carries the reproduced figure.
type Figure1Result struct {
	Config Figure1Config `json:"config"`
	// Series holds one measured RER curve per level, named like the
	// paper's legend ("I9,7").
	Series []metrics.Series `json:"series"`
	// Expected holds the closed-form E[RER] curves for cross-checking.
	Expected []metrics.Series `json:"expected"`
	// Table lists mean RER per (εg, level).
	Table metrics.Table `json:"table"`
	// Sensitivities records the mean per-level group sensitivity across
	// trials, indexed like Config.Levels.
	Sensitivities []float64 `json:"sensitivities"`
}

// RunFigure1 reproduces Figure 1: RER of the association-count query vs εg
// for every information level.
//
// Per trial, Phase 1 builds a fresh private hierarchy; the εg sweep then
// reuses that hierarchy (changing the Phase-2 budget does not change the
// grouping). RER is averaged across trials. Trials fan out across
// Config.Workers lanes — each consumes a stream pre-split in trial
// order, writes only its own result slot, and the sums reduce in trial
// order. Inside a trial the εg × level sweep fans out too: every (level,
// εg) pair owns a stream pre-split in serial order and writes only its
// own grid slot, so lanes left idle by a small trial count (dense grid,
// Trials < Workers) are spent on the sweep instead. The figure is
// bit-identical for any worker count.
func RunFigure1(cfg Figure1Config) (*Figure1Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Stream {
		return RunFigure1Streamed(cfg)
	}
	g, err := datagen.Generate(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating dataset: %w", err)
	}
	return RunFigure1On(g, cfg)
}

// RunFigure1Streamed is RunFigure1 over the chunked build path: the
// dataset is synthesized once as a bare edge list (datagen.EdgeList — no
// Graph, no CSR directions) and every trial's hierarchy is built through
// hierarchy.BuildFromEdges with a per-build SliceSource cursor over the
// shared, immutable list, so trial lanes fan out without copying edges.
// Bit-identical to the in-memory path (pinned by
// TestFigure1StreamedMatchesInMemory).
func RunFigure1Streamed(cfg Figure1Config) (*Figure1Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	edges, numLeft, numRight, err := datagen.EdgeList(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: synthesizing edge list: %w", err)
	}
	return runFigure1Trials(cfg, func(b *hierarchy.Builder, buildWorkers int, src *rng.Source) (*hierarchy.Tree, error) {
		es := bipartite.NewSliceSource(numLeft, numRight, edges)
		return buildTrialTreeFromEdges(b, es, cfg.Rounds, cfg.Phase1Epsilon, buildWorkers, src)
	})
}

// validate rejects configs cheaply, before any dataset synthesis.
func (cfg Figure1Config) validate() error {
	if cfg.Trials < 1 {
		return fmt.Errorf("experiments: trials must be >= 1 (got %d)", cfg.Trials)
	}
	if len(cfg.EpsGrid) == 0 || len(cfg.Levels) == 0 {
		return fmt.Errorf("experiments: empty eps grid or level list")
	}
	return nil
}

// RunFigure1On is RunFigure1 over an already materialized graph,
// ignoring cfg.Dataset — the entry point when the caller loads or reuses
// a graph (benchmarks isolating the trial loop, repeated sweeps over one
// dataset).
func RunFigure1On(g *bipartite.Graph, cfg Figure1Config) (*Figure1Result, error) {
	if g == nil {
		return nil, fmt.Errorf("experiments: nil graph")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return runFigure1Trials(cfg, func(b *hierarchy.Builder, buildWorkers int, src *rng.Source) (*hierarchy.Tree, error) {
		return buildTrialTree(b, g, cfg.Rounds, cfg.Phase1Epsilon, buildWorkers, src)
	})
}

// runFigure1Trials is the shared trial loop: buildTree produces one
// trial's Phase-1 hierarchy (from a Graph or an edge stream — the loop
// does not care), everything downstream of the build is common.
func runFigure1Trials(cfg Figure1Config, buildTree func(b *hierarchy.Builder, buildWorkers int, src *rng.Source) (*hierarchy.Tree, error)) (*Figure1Result, error) {
	src := rng.New(cfg.Seed)

	// Per trial: rer[li][ei] and exp[li][ei] measured on the trial's own
	// hierarchy, sens[li] its per-level sensitivity.
	type trialResult struct {
		rer, exp [][]float64
		sens     []float64
	}
	trialSrcs := splitPerTrial(src, cfg.Trials)
	results := make([]trialResult, cfg.Trials)
	builders := trialBuilders(numTrialWorkers(cfg.Workers, cfg.Trials))
	defer closeBuilders(builders)
	buildWorkers := buildWorkersFor(cfg.Workers, cfg.Trials)
	err := runTrials(cfg.Workers, cfg.Trials, func(worker, trial int) error {
		trialSrc := trialSrcs[trial]
		tree, err := buildTree(builders[worker], buildWorkers, trialSrc.Split(1))
		if err != nil {
			return fmt.Errorf("experiments: trial %d phase 1: %w", trial, err)
		}
		noiseSrc := trialSrc.Split(2)
		res := trialResult{
			rer:  make([][]float64, len(cfg.Levels)),
			exp:  make([][]float64, len(cfg.Levels)),
			sens: make([]float64, len(cfg.Levels)),
		}
		for li, level := range cfg.Levels {
			res.rer[li] = make([]float64, len(cfg.EpsGrid))
			res.exp[li] = make([]float64, len(cfg.EpsGrid))
			sens, err := core.Sensitivity(tree, level, cfg.Model)
			if err != nil {
				return err
			}
			res.sens[li] = float64(sens)
		}
		// One pre-split stream per (level, εg) pair, derived in serial
		// order, then the sweep fans pairs across this lane's worker
		// share; each pair writes only its own grid slot, so the grid is
		// bit-identical for any sweep width.
		nEps := len(cfg.EpsGrid)
		pairSrcs := make([]*rng.Source, len(cfg.Levels)*nEps)
		for i := range pairSrcs {
			pairSrcs[i] = noiseSrc.Split(uint64(i))
		}
		sweepErr := runTrials(buildWorkers, len(pairSrcs), func(_, pi int) error {
			li, ei := pi/nEps, pi%nEps
			level, eps := cfg.Levels[li], cfg.EpsGrid[ei]
			p := dp.Params{Epsilon: eps, Delta: cfg.Delta}
			rel, err := core.ReleaseCount(tree, level, p, cfg.Model, cfg.Calib, pairSrcs[pi])
			if err != nil {
				return fmt.Errorf("experiments: trial %d level %d eps %v: %w", trial, level, eps, err)
			}
			res.rer[li][ei] = rel.RER
			exp, err := core.ExpectedRER(tree, level, p, cfg.Model, cfg.Calib)
			if err != nil {
				return err
			}
			res.exp[li][ei] = exp
			return nil
		})
		if sweepErr != nil {
			return sweepErr
		}
		results[trial] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Reduce in trial order: the same floating-point addition sequence a
	// serial loop performs.
	rerSum := make([][]float64, len(cfg.Levels))
	expSum := make([][]float64, len(cfg.Levels))
	for i := range rerSum {
		rerSum[i] = make([]float64, len(cfg.EpsGrid))
		expSum[i] = make([]float64, len(cfg.EpsGrid))
	}
	sensSum := make([]float64, len(cfg.Levels))
	for _, res := range results {
		for li := range cfg.Levels {
			sensSum[li] += res.sens[li]
			for ei := range cfg.EpsGrid {
				rerSum[li][ei] += res.rer[li][ei]
				expSum[li][ei] += res.exp[li][ei]
			}
		}
	}

	res := &Figure1Result{Config: cfg}
	res.Table = metrics.Table{
		Title:   "Figure 1 — relative error rate vs εg",
		Headers: append([]string{"εg"}, levelNames(cfg.Rounds, cfg.Levels)...),
	}
	res.Sensitivities = make([]float64, len(cfg.Levels))
	for li, level := range cfg.Levels {
		res.Sensitivities[li] = sensSum[li] / float64(cfg.Trials)
		name := fmt.Sprintf("I%d,%d", cfg.Rounds, level)
		measured := metrics.Series{Name: name, X: cfg.EpsGrid, Y: make([]float64, len(cfg.EpsGrid))}
		expected := metrics.Series{Name: name + " (expected)", X: cfg.EpsGrid, Y: make([]float64, len(cfg.EpsGrid))}
		for ei := range cfg.EpsGrid {
			measured.Y[ei] = rerSum[li][ei] / float64(cfg.Trials)
			expected.Y[ei] = expSum[li][ei] / float64(cfg.Trials)
		}
		res.Series = append(res.Series, measured)
		res.Expected = append(res.Expected, expected)
	}
	for ei, eps := range cfg.EpsGrid {
		row := make([]any, 0, len(cfg.Levels)+1)
		row = append(row, eps)
		for li := range cfg.Levels {
			row = append(row, res.Series[li].Y[ei])
		}
		res.Table.AddRow(row...)
	}
	return res, nil
}

func levelNames(maxLevel int, levels []int) []string {
	out := make([]string, len(levels))
	for i, lvl := range levels {
		out[i] = fmt.Sprintf("I%d,%d", maxLevel, lvl)
	}
	return out
}

// RunFigure1Registry adapts RunFigure1 to the registry Runner signature.
func RunFigure1Registry(opts Options) (*Report, error) {
	cfg, err := DefaultFigure1Config(opts)
	if err != nil {
		return nil, err
	}
	res, err := RunFigure1(cfg)
	if err != nil {
		return nil, err
	}
	fig, err := metrics.RenderASCII(res.Series, metrics.PlotOptions{
		Title:  "Figure 1: RER vs εg (log y)",
		LogY:   true,
		XLabel: "εg",
		YLabel: "relative error rate",
	})
	if err != nil {
		return nil, err
	}
	report := &Report{
		Name:    "figure1",
		Title:   "Figure 1 — impact of εg on per-level RER",
		Tables:  []metrics.Table{res.Table},
		Series:  res.Series,
		Figures: []string{fig},
	}
	// Paper-vs-measured note at the largest εg.
	last := len(cfg.EpsGrid) - 1
	for li, lvl := range cfg.Levels {
		ref, ok := PaperFigure1Reference[lvl]
		if !ok {
			continue
		}
		report.Notes = append(report.Notes, fmt.Sprintf(
			"level %d at εg=%.3f: measured RER %.4f, paper %.4f (full-scale DBLP)",
			lvl, cfg.EpsGrid[last], res.Series[li].Y[last], ref))
	}
	return report, nil
}
