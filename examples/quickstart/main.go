// Quickstart: disclose a synthetic association graph at multiple
// information levels with g-group differential privacy, and inspect what
// each privilege tier receives.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Get data: a small synthetic author-paper graph (or load your own
	//    with repro.LoadTSV / repro.LoadDBLPXML).
	g, err := repro.GenerateDataset(repro.PresetDBLPTiny, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", repro.ComputeStats(g))

	// 2. Configure the two-phase pipeline: six specialization rounds and
	//    εg = 0.9 of group privacy per information level.
	pipe, err := repro.NewPipeline(
		repro.Params{Epsilon: 0.9, Delta: 1e-5},
		repro.WithRounds(6),
		repro.WithPhase1Epsilon(0.1), // private exponential-mechanism grouping
		repro.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run it.
	rel, err := pipe.Run(g)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Each information level I6,i protects the groups formed at level
	//    i: coarse levels (large groups) get heavy noise, fine levels get
	//    almost exact answers.
	fmt.Printf("\n%-8s %12s %12s %10s %8s\n", "level", "sensitivity", "noisy count", "sigma", "RER")
	for _, lr := range rel.Counts.Levels {
		fmt.Printf("I6,%-5d %12d %12.0f %10.1f %7.2f%%\n",
			lr.Level, lr.Sensitivity, lr.NoisyCount, lr.Sigma, lr.RER*100)
	}

	// 5. A privilege-3 user receives only their tier's view.
	view, err := rel.ViewFor(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprivilege-3 view: %.0f associations (εg=%g group-DP at level 3)\n",
		view.Count.NoisyCount, view.Count.Epsilon)
}
