// Package ledgerd is the shared privacy-ledger sequencer: a
// single-writer service that owns one accountant.DurableLedger per
// budget key and admits spends on behalf of N gdpserve replicas, so a
// deployment behind a load balancer spends ONE (εg, δ) budget instead
// of silently multiplying the paper's guarantee by the replica count.
// Accounting must be centralized even when answering is not — the
// canonical DP deployment failure this service exists to close.
//
// The admission protocol is exactly-once under retries:
//
//   - Every spend carries a client-generated op ID. The sequencer folds
//     the op ID into the WAL op label before logging, so the dedup set
//     is rebuilt from replay on restart: a retried op whose first
//     attempt was admitted (but whose ack was lost to a timeout) is
//     recognized and re-acked, never double-debited.
//   - The op is fsynced into the WAL (accountant.DurableLedger under
//     its configured policy; FsyncAlways by default) BEFORE the ack, so
//     an admitted spend can never be forgotten — the direction of every
//     failure is "budget charged, bytes withheld", never the reverse.
//   - Every spend carries the epoch token the client learned at attach.
//     The token pins both the ledger directory's persistent identity
//     and a boot counter incremented on every sequencer start; a
//     request carrying a stale token is refused (the client must fail
//     closed), which fences a restarted — or worse, swapped — sequencer
//     against writers still operating on its predecessor's state.
//
// Budget exhaustion is a definitive answer, not a failure: the ledger
// state only grows, so a rejected spend stays rejected and is safe to
// report without dedup. Everything else — I/O faults, unknown keys,
// stale epochs — is an error the client must latch on.
package ledgerd

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/accountant"
	"repro/internal/dp"
)

// Errors returned by the sequencer core; the HTTP layer maps them onto
// status codes and the wire error codes accountant.RemoteLedger keys on.
var (
	// ErrBadKey rejects ledger keys that could escape the ledger
	// directory or collide with the sequencer's own bookkeeping files.
	ErrBadKey = errors.New("ledgerd: invalid ledger key")
	// ErrBadOpID rejects malformed idempotency tokens.
	ErrBadOpID = errors.New("ledgerd: invalid op id")
	// ErrEpochFenced refuses a request whose epoch token does not match
	// the live sequencer: the writer attached to a previous incarnation
	// and must re-attach (or fail closed) rather than keep spending
	// under assumptions the restart may have invalidated.
	ErrEpochFenced = errors.New("ledgerd: stale epoch token (sequencer restarted); re-attach before spending")
	// ErrNotAttached refuses a spend against a key no client attached in
	// this sequencer incarnation.
	ErrNotAttached = errors.New("ledgerd: ledger key not attached")
	// ErrClosed is returned once the service is shut down.
	ErrClosed = errors.New("ledgerd: service closed")
)

// epochFile persists the sequencer's fencing state inside the ledger
// directory: the directory's random persistent identity plus a boot
// counter. Ledger keys cannot collide with it (they never start with
// a dot).
const epochFile = ".sequencer-epoch"

// Options configures a Service. Dir is required; the durability knobs
// mirror accountant.DurableOptions and apply to every ledger the
// service opens.
type Options struct {
	// Dir holds one WAL (+snapshot) per ledger key, plus the epoch file.
	Dir string
	// Fsync, FsyncInterval and SnapshotEvery configure every
	// DurableLedger the service opens ("" selects FsyncAlways — the only
	// policy under which an ack implies durability across power loss).
	Fsync         accountant.FsyncPolicy
	FsyncInterval time.Duration
	SnapshotEvery int
	// OpenWriter is the accountant fault-injection seam, threaded into
	// every ledger (tests only).
	OpenWriter func(path string) (accountant.WriteSyncer, error)
}

// Service is the sequencer core: a map of open durable ledgers plus the
// idempotency state rebuilt from their WALs. Safe for concurrent use.
type Service struct {
	opts  Options
	epoch string

	mu      sync.Mutex
	ledgers map[string]*ledgerEntry
	closed  bool
}

// ledgerEntry pairs one durable ledger with its replay-derived dedup
// set. The entry mutex serializes the dedup-check → spend → record
// sequence so a retried op can never race its own first attempt.
type ledgerEntry struct {
	mu      sync.Mutex
	dl      *accountant.DurableLedger
	applied map[string]int // op ID → admitted seq
}

// New opens (creating if needed) the ledger directory, advances the
// sequencer epoch, and returns an empty service. Ledgers open lazily at
// Attach and replay any prior incarnation's spends.
func New(opts Options) (*Service, error) {
	if opts.Dir == "" {
		return nil, errors.New("ledgerd: Options.Dir is required")
	}
	if _, err := accountant.ParseFsyncPolicy(string(opts.Fsync)); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledgerd: ledger dir: %w", err)
	}
	epoch, err := advanceEpoch(opts.Dir)
	if err != nil {
		return nil, err
	}
	return &Service{
		opts:    opts,
		epoch:   epoch,
		ledgers: make(map[string]*ledgerEntry),
	}, nil
}

// advanceEpoch reads, increments and durably rewrites the epoch file.
// The token is "<dir identity>:<boot counter>": the identity is drawn
// from OS entropy when the directory is first used and never changes,
// so two sequencers over DIFFERENT directories can never accidentally
// share a token even when their boot counters coincide.
func advanceEpoch(dir string) (string, error) {
	path := filepath.Join(dir, epochFile)
	var id uint64
	var boot uint64
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		idStr, bootStr, ok := strings.Cut(strings.TrimSpace(string(data)), ":")
		if !ok {
			return "", fmt.Errorf("ledgerd: malformed epoch file %s", path)
		}
		if id, err = strconv.ParseUint(idStr, 16, 64); err != nil {
			return "", fmt.Errorf("ledgerd: malformed epoch file %s: %v", path, err)
		}
		if boot, err = strconv.ParseUint(bootStr, 10, 64); err != nil {
			return "", fmt.Errorf("ledgerd: malformed epoch file %s: %v", path, err)
		}
	case errors.Is(err, fs.ErrNotExist):
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "", fmt.Errorf("ledgerd: drawing dir identity: %w", err)
		}
		id = binary.LittleEndian.Uint64(b[:])
	default:
		return "", fmt.Errorf("ledgerd: reading epoch file: %w", err)
	}
	boot++
	token := fmt.Sprintf("%016x:%d", id, boot)
	// Temp + fsync + rename + dir fsync: the token a client may pin must
	// itself survive a crash, or a re-restart could hand out a token the
	// previous boot already handed out.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("ledgerd: writing epoch file: %w", err)
	}
	if _, err := f.WriteString(token + "\n"); err == nil {
		err = f.Sync()
	}
	if errClose := f.Close(); err == nil {
		err = errClose
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("ledgerd: writing epoch file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("ledgerd: publishing epoch file: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return token, nil
}

// Epoch returns the live fencing token.
func (s *Service) Epoch() string { return s.epoch }

// ValidKey reports whether a ledger key is safe to use as a filename
// inside the ledger directory: non-empty, bounded, filesystem-safe
// characters only, and never dot-led (which excludes ".", "..", and the
// sequencer's own epoch file).
func ValidKey(key string) bool {
	if key == "" || len(key) > 200 || key[0] == '.' {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// opIDSep joins the op ID and the client's label inside the WAL op
// record; op IDs reject the separator so the split is unambiguous, and
// labels written by a non-sequencer DurableLedger (which lack the
// prefix entirely) simply contribute nothing to the dedup set.
const (
	opIDPrefix = "id="
	opIDSep    = '|'
)

// validOpID bounds the idempotency token: non-empty, short, and free of
// the label separator.
func validOpID(opID string) bool {
	if opID == "" || len(opID) > 128 {
		return false
	}
	return !strings.ContainsRune(opID, opIDSep)
}

// encodeLabel folds the op ID into the durable label.
func encodeLabel(opID, label string) string {
	return opIDPrefix + opID + string(opIDSep) + label
}

// decodeLabel splits a durable label back into (opID, client label).
// ok is false for labels without the sequencer envelope.
func decodeLabel(stored string) (opID, label string, ok bool) {
	if !strings.HasPrefix(stored, opIDPrefix) {
		return "", "", false
	}
	rest := stored[len(opIDPrefix):]
	i := strings.IndexByte(rest, opIDSep)
	if i < 0 {
		return "", "", false
	}
	return rest[:i], rest[i+1:], true
}

// AttachResult reports the authoritative ledger state a client pins at
// attach time.
type AttachResult struct {
	Epoch     string
	Budget    dp.Params
	Spent     dp.Params
	Remaining dp.Params
	OpCount   int
}

// Attach opens (creating or replaying) the durable ledger for key under
// the given budget and returns its authoritative state plus the epoch
// token every subsequent spend must carry. Attaching an existing key
// with a different budget fails with accountant.ErrBudgetMismatch —
// raising a partially spent budget would mint privacy out of thin air.
// Attach is idempotent.
func (s *Service) Attach(key string, budget dp.Params) (AttachResult, error) {
	if !ValidKey(key) {
		return AttachResult{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	if err := budget.Validate(); err != nil {
		return AttachResult{}, err
	}
	e, err := s.entry(key, budget)
	if err != nil {
		return AttachResult{}, err
	}
	return AttachResult{
		Epoch:     s.epoch,
		Budget:    e.dl.Budget(),
		Spent:     e.dl.Spent(),
		Remaining: e.dl.Remaining(),
		OpCount:   e.dl.OpCount(),
	}, nil
}

// entry returns the open ledger for key, opening it if needed. With a
// zero budget the key must already be open (the read-only paths).
func (s *Service) entry(key string, budget dp.Params) (*ledgerEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if e, ok := s.ledgers[key]; ok {
		if budget != (dp.Params{}) && e.dl.Budget() != budget {
			return nil, fmt.Errorf("%w: key %q is open with budget %s, attach requested %s",
				accountant.ErrBudgetMismatch, key, e.dl.Budget(), budget)
		}
		return e, nil
	}
	if budget == (dp.Params{}) {
		return nil, fmt.Errorf("%w: %q", ErrNotAttached, key)
	}
	dl, err := accountant.OpenDurableLedger(budget, filepath.Join(s.opts.Dir, key+".wal"), accountant.DurableOptions{
		Fsync:         s.opts.Fsync,
		FsyncInterval: s.opts.FsyncInterval,
		SnapshotEvery: s.opts.SnapshotEvery,
		OpenWriter:    s.opts.OpenWriter,
	})
	if err != nil {
		return nil, err
	}
	// Rebuild the exactly-once dedup set from the replayed trail: an op
	// admitted by a previous incarnation must be recognized when its
	// (timed-out) sender retries it against this one.
	e := &ledgerEntry{dl: dl, applied: make(map[string]int)}
	for _, op := range dl.Ops() {
		if opID, _, ok := decodeLabel(op.Label); ok {
			e.applied[opID] = op.Seq
		}
	}
	s.ledgers[key] = e
	return e, nil
}

// SpendResult acknowledges one admitted (or replayed) spend.
type SpendResult struct {
	// Seq is the admitted op's 1-based ledger sequence.
	Seq int
	// Replayed reports that the op ID was already admitted (a retry of
	// an op whose first ack was lost) and nothing was re-debited.
	Replayed  bool
	Spent     dp.Params
	Remaining dp.Params
	OpCount   int
}

// Spend admits one operation exactly once. The epoch must match the
// live token (ErrEpochFenced otherwise), the key must be attached, and
// the op ID must be well-formed. The spend is durably logged (fsynced
// under FsyncAlways) before the result is returned; a budget rejection
// surfaces as accountant.ErrBudgetExceeded with nothing changed, and
// any durable-log failure latches the underlying ledger fail-closed
// exactly as a local DurableLedger would.
func (s *Service) Spend(key, epoch, opID, label string, cost dp.Params) (SpendResult, error) {
	if !ValidKey(key) {
		return SpendResult{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	if epoch != s.epoch {
		return SpendResult{}, fmt.Errorf("%w (request %q, live %q)", ErrEpochFenced, epoch, s.epoch)
	}
	if !validOpID(opID) {
		return SpendResult{}, fmt.Errorf("%w: %q", ErrBadOpID, opID)
	}
	e, err := s.entry(key, dp.Params{})
	if err != nil {
		return SpendResult{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq, ok := e.applied[opID]; ok {
		return s.result(e, seq, true), nil
	}
	if err := e.dl.Spend(encodeLabel(opID, label), cost); err != nil {
		return SpendResult{}, err
	}
	seq := e.dl.OpCount()
	e.applied[opID] = seq
	return s.result(e, seq, false), nil
}

func (s *Service) result(e *ledgerEntry, seq int, replayed bool) SpendResult {
	return SpendResult{
		Seq:       seq,
		Replayed:  replayed,
		Spent:     e.dl.Spent(),
		Remaining: e.dl.Remaining(),
		OpCount:   e.dl.OpCount(),
	}
}

// Status reports one attached ledger's state (read-only; the key must
// be attached in this incarnation).
type Status struct {
	Key       string
	Epoch     string
	Budget    dp.Params
	Spent     dp.Params
	Remaining dp.Params
	OpCount   int
	Durable   accountant.DurableStatus
}

// Status returns the live state of an attached key.
func (s *Service) Status(key string) (Status, error) {
	if !ValidKey(key) {
		return Status{}, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	e, err := s.entry(key, dp.Params{})
	if err != nil {
		return Status{}, err
	}
	return Status{
		Key:       key,
		Epoch:     s.epoch,
		Budget:    e.dl.Budget(),
		Spent:     e.dl.Spent(),
		Remaining: e.dl.Remaining(),
		OpCount:   e.dl.OpCount(),
		Durable:   e.dl.Status(),
	}, nil
}

// Ops returns an attached key's audit trail with the sequencer's op-ID
// envelope stripped: clients see exactly the labels they spent under.
func (s *Service) Ops(key string) ([]accountant.Op, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	e, err := s.entry(key, dp.Params{})
	if err != nil {
		return nil, err
	}
	ops := e.dl.Ops()
	for i := range ops {
		if _, label, ok := decodeLabel(ops[i].Label); ok {
			ops[i].Label = label
		}
	}
	return ops, nil
}

// Ready implements the readiness probe: a single-node sequencer is
// ready while it is open (its durable state is local, so open means
// attachable).
func (s *Service) Ready() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, "closed"
	}
	return true, "single-node"
}

// Keys lists the ledger keys attached in this incarnation.
func (s *Service) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.ledgers))
	for k := range s.ledgers {
		out = append(out, k)
	}
	return out
}

// Close flushes and closes every open ledger. Further calls fail with
// ErrClosed; Close is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var errs []error
	for key, e := range s.ledgers {
		if err := e.dl.Close(); err != nil {
			errs = append(errs, fmt.Errorf("ledgerd: closing %q: %w", key, err))
		}
	}
	return errors.Join(errs...)
}
