package partition

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBalanceUtilities(t *testing.T) {
	t.Parallel()
	// weights 3,1,2: total 6.
	// k=1: |3-3| = 0 -> 0
	// k=2: |4-2| = 2 -> -2
	utilities := balanceUtilities([]int64{3, 1, 2})
	want := []float64{0, -2}
	if len(utilities) != len(want) {
		t.Fatalf("len = %d, want %d", len(utilities), len(want))
	}
	for i := range want {
		if utilities[i] != want[i] {
			t.Errorf("u[%d] = %v, want %v", i, utilities[i], want[i])
		}
	}
}

// TestBalancedBisectorMatchesUtilityArgmax pins the scan-based Bisect to
// the utility-argmax formulation it replaced: earliest maximum utility.
func TestBalancedBisectorMatchesUtilityArgmax(t *testing.T) {
	t.Parallel()
	r := rng.New(33)
	for trial := 0; trial < 200; trial++ {
		weights := make([]int64, 2+r.Intn(60))
		for i := range weights {
			weights[i] = int64(r.Intn(20))
		}
		got, err := (BalancedBisector{}).Bisect(weights)
		if err != nil {
			t.Fatal(err)
		}
		utilities := balanceUtilities(weights)
		want := 0
		for i, u := range utilities {
			if u > utilities[want] {
				want = i
			}
		}
		if got != want+1 {
			t.Fatalf("trial %d weights %v: Bisect %d, argmax %d", trial, weights, got, want+1)
		}
	}
}

// TestPrivacyConsumer checks which bisectors report budget consumption.
func TestPrivacyConsumer(t *testing.T) {
	t.Parallel()
	if !mustExpMech(t, 1).Private() {
		t.Error("ExpMechBisector must report Private")
	}
	for _, b := range []Bisector{BalancedBisector{}, MidpointBisector{}, mustRandom(t)} {
		if _, ok := b.(PrivacyConsumer); ok {
			t.Errorf("%s unexpectedly implements PrivacyConsumer", b.Name())
		}
	}
}

func TestValidateErrors(t *testing.T) {
	t.Parallel()
	bisectors := []Bisector{
		mustExpMech(t, 1),
		BalancedBisector{},
		mustRandom(t),
		MidpointBisector{},
	}
	for _, b := range bisectors {
		if _, err := b.Bisect(nil); !errors.Is(err, ErrTooSmall) {
			t.Errorf("%s: nil input error = %v", b.Name(), err)
		}
		if _, err := b.Bisect([]int64{5}); !errors.Is(err, ErrTooSmall) {
			t.Errorf("%s: single item error = %v", b.Name(), err)
		}
		if _, err := b.Bisect([]int64{1, -2}); !errors.Is(err, ErrNegativeWeight) {
			t.Errorf("%s: negative weight error = %v", b.Name(), err)
		}
	}
}

func TestBalancedBisectorExact(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		weights []int64
		want    int
	}{
		{name: "even pair", weights: []int64{1, 1}, want: 1},
		{name: "front heavy", weights: []int64{10, 1, 1, 1}, want: 1},
		{name: "uniform four", weights: []int64{2, 2, 2, 2}, want: 2},
		{name: "back heavy", weights: []int64{1, 1, 1, 10}, want: 3},
		{name: "all zero", weights: []int64{0, 0, 0}, want: 1}, // ties break to first
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, err := BalancedBisector{}.Bisect(tc.weights)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("cut = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestMidpointBisector(t *testing.T) {
	t.Parallel()
	got, err := MidpointBisector{}.Bisect([]int64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("cut = %d, want 2", got)
	}
}

func TestRandomBisectorRange(t *testing.T) {
	t.Parallel()
	b := mustRandom(t)
	weights := []int64{1, 1, 1, 1, 1}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		cut, err := b.Bisect(weights)
		if err != nil {
			t.Fatal(err)
		}
		if cut < 1 || cut >= len(weights) {
			t.Fatalf("cut %d outside [1,%d)", cut, len(weights))
		}
		seen[cut] = true
	}
	if len(seen) != len(weights)-1 {
		t.Errorf("random bisector only produced cuts %v", seen)
	}
}

func TestNewRandomBisectorNilSource(t *testing.T) {
	t.Parallel()
	if _, err := NewRandomBisector(nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestExpMechBisectorConcentratesOnBalance(t *testing.T) {
	t.Parallel()
	b := mustExpMech(t, 4) // generous budget concentrates hard
	// Perfect cut is k=2 (3+3 vs 3+3).
	weights := []int64{3, 3, 3, 3}
	counts := map[int]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		cut, err := b.Bisect(weights)
		if err != nil {
			t.Fatal(err)
		}
		counts[cut]++
	}
	if frac := float64(counts[2]) / n; frac < 0.75 {
		t.Errorf("balanced cut chosen %.2f of the time, want > 0.75 (counts %v)", frac, counts)
	}
}

func TestExpMechBisectorRandomizes(t *testing.T) {
	t.Parallel()
	// With a small budget every cut should appear.
	b := mustExpMech(t, 0.01)
	weights := []int64{5, 1, 1, 1, 5}
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		cut, err := b.Bisect(weights)
		if err != nil {
			t.Fatal(err)
		}
		seen[cut] = true
	}
	if len(seen) < 3 {
		t.Errorf("low-budget bisector too deterministic: %v", seen)
	}
}

func TestExpMechBisectorEpsilon(t *testing.T) {
	t.Parallel()
	b := mustExpMech(t, 0.7)
	if b.Epsilon() != 0.7 {
		t.Errorf("Epsilon = %v", b.Epsilon())
	}
	if b.Name() != "expmech" {
		t.Errorf("Name = %q", b.Name())
	}
}

func TestNewExpMechBisectorValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewExpMechBisector(0, rng.New(1)); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewExpMechBisector(1, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestQuality(t *testing.T) {
	t.Parallel()
	q, err := Quality([]int64{3, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.LeftWeight != 3 || q.RightWeight != 3 || q.Imbalance != 0 {
		t.Errorf("quality = %+v", q)
	}
	q, err = Quality([]int64{3, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.LeftWeight != 4 || q.RightWeight != 2 || math.Abs(q.Imbalance-2.0/6.0) > 1e-12 {
		t.Errorf("quality = %+v", q)
	}
	if _, err := Quality([]int64{1, 2}, 0); err == nil {
		t.Error("cut=0 accepted")
	}
	if _, err := Quality([]int64{1, 2}, 2); err == nil {
		t.Error("cut=n accepted")
	}
	// All-zero weights: imbalance defined as 0.
	q, err = Quality([]int64{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Imbalance != 0 {
		t.Errorf("zero-weight imbalance = %v", q.Imbalance)
	}
}

// TestQuickCutsInRange: every bisector returns cuts within [1, n-1] and
// never errors on valid input.
func TestQuickCutsInRange(t *testing.T) {
	t.Parallel()
	src := rng.New(42)
	expMech := mustExpMech(t, 0.5)
	random := mustRandom(t)
	f := func(seed uint64) bool {
		r := src.Split(seed)
		n := r.Intn(64) + 2
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(r.Intn(100))
		}
		for _, b := range []Bisector{expMech, BalancedBisector{}, random, MidpointBisector{}} {
			cut, err := b.Bisect(weights)
			if err != nil {
				return false
			}
			if cut < 1 || cut >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestExpMechBeatsRandomOnImbalance compares mean cut imbalance: with a
// skewed weight vector, the exponential mechanism should find more
// balanced cuts than uniform random cutting. This is the mechanism-level
// version of ablation A3.
func TestExpMechBeatsRandomOnImbalance(t *testing.T) {
	t.Parallel()
	expMech := mustExpMech(t, 1)
	random := mustRandom(t)
	src := rng.New(333)
	const rounds = 300
	var expTotal, randTotal float64
	for round := 0; round < rounds; round++ {
		r := src.Split(uint64(round))
		weights := make([]int64, 40)
		for i := range weights {
			weights[i] = int64(r.Intn(20))
		}
		weights[0] = 200 // strong skew
		cutE, err := expMech.Bisect(weights)
		if err != nil {
			t.Fatal(err)
		}
		cutR, err := random.Bisect(weights)
		if err != nil {
			t.Fatal(err)
		}
		qe, err := Quality(weights, cutE)
		if err != nil {
			t.Fatal(err)
		}
		qr, err := Quality(weights, cutR)
		if err != nil {
			t.Fatal(err)
		}
		expTotal += qe.Imbalance
		randTotal += qr.Imbalance
	}
	if expTotal >= randTotal {
		t.Errorf("expmech mean imbalance %.4f not better than random %.4f",
			expTotal/rounds, randTotal/rounds)
	}
}

func mustExpMech(t *testing.T, eps float64) *ExpMechBisector {
	t.Helper()
	b, err := NewExpMechBisector(eps, rng.New(uint64(math.Float64bits(eps))))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustRandom(t *testing.T) *RandomBisector {
	t.Helper()
	b, err := NewRandomBisector(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	return b
}
