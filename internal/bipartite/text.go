package bipartite

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SaveTSV writes one association per line as "left<TAB>right". When the
// graph carries names the labels are written; otherwise the dense ids are.
func SaveTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.ForEachEdge(func(l, r int32) bool {
		if g.HasNames() {
			_, err = fmt.Fprintf(bw, "%s\t%s\n", g.LeftName(l), g.RightName(r))
		} else {
			_, err = fmt.Fprintf(bw, "%d\t%d\n", l, r)
		}
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("bipartite: writing tsv: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("bipartite: flushing tsv: %w", err)
	}
	return nil
}

// LoadTSV reads "left<TAB>right" lines. If every field on both sides
// parses as a non-negative integer the graph is built over dense ids;
// otherwise fields are interned as names. Blank lines and lines starting
// with '#' are skipped.
func LoadTSV(r io.Reader) (*Graph, error) {
	type pair struct{ l, r string }
	var pairs []pair
	numeric := true

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 2 {
			return nil, fmt.Errorf("bipartite: tsv line %d: want 2 tab-separated fields, got %d", lineNo, len(fields))
		}
		p := pair{l: fields[0], r: fields[1]}
		if numeric {
			if !isUint(p.l) || !isUint(p.r) {
				numeric = false
			}
		}
		pairs = append(pairs, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bipartite: scanning tsv: %w", err)
	}

	b := NewBuilder(len(pairs))
	for _, p := range pairs {
		if numeric {
			l, _ := strconv.ParseInt(p.l, 10, 32)
			r, _ := strconv.ParseInt(p.r, 10, 32)
			b.AddEdge(int32(l), int32(r))
		} else {
			b.AddAssociation(p.l, p.r)
		}
	}
	return b.Build()
}

func isUint(s string) bool {
	if s == "" {
		return false
	}
	v, err := strconv.ParseInt(s, 10, 32)
	return err == nil && v >= 0
}
