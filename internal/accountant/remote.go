// RemoteLedger: the client side of the shared privacy-ledger sequencer
// (internal/ledgerd, cmd/gdpledgerd).
//
// N serving replicas pointing their registries at one sequencer spend
// ONE budget: every Spend becomes an idempotent HTTP admission request
// carrying a client-unique op ID, and the sequencer fsyncs the op into
// its WAL before acking — the same durable-before-admitted contract
// DurableLedger gives one process, extended across processes.
//
// Failure semantics are strictly fail-closed, in the only safe
// direction: budget may be charged without bytes released, never the
// reverse.
//
//   - A definitive budget rejection (HTTP 429 "budget-exceeded") is a
//     clean ErrBudgetExceeded — the ledger state only grows, so the
//     rejection is permanent and nothing was spent.
//   - Transient failures (timeouts, connection errors, 5xx) are retried
//     with bounded exponential backoff and jitter under the SAME op ID,
//     so an admission whose ack was lost is re-acked, not re-debited.
//   - With a single configured address, anything else — retries
//     exhausted, an epoch fence (the sequencer restarted), a budget or
//     protocol mismatch — latches the ledger: every subsequent spend
//     returns ErrLedgerFailed until a new RemoteLedger is opened. A
//     latched spend admitted nothing the caller may release.
//
// Multi-address mode ("addr1,addr2,addr3" — a replicated sequencer
// group) adds failover on top without weakening any of the above: on a
// network error, 5xx, fence, or not-primary refusal the client walks
// the member list under the existing bounded backoff, re-attaches to
// adopt the new primary's term, and retries the SAME op ID — the
// group's whole-log dedup then returns the recorded outcome of an op
// whose first ack was lost to the failover, never a double charge.
// Every operation is bounded by one per-op context deadline
// (RemoteOptions.OpTimeout), so retries can never stack past the
// caller's budget.
package accountant

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dp"
)

// ErrRemoteProtocol marks responses the client cannot interpret — a
// wrong server, a wire-format drift. It latches like any other
// non-transient failure.
var ErrRemoteProtocol = errors.New("accountant: unexpected remote-ledger response")

// RemoteOptions configures OpenRemoteLedger. The zero value selects the
// production defaults.
type RemoteOptions struct {
	// Timeout bounds each HTTP attempt (default 2s).
	Timeout time.Duration
	// OpTimeout bounds one whole operation — every attempt, backoff
	// pause, member walk and re-attach included (default 15s). Without
	// it, per-attempt timeouts could stack past any caller budget.
	OpTimeout time.Duration
	// Attempts bounds the tries per operation across ALL members, first
	// included (default 8: enough to walk a 3-member list twice over a
	// multi-second backoff window, so a spend that lands mid-election
	// rides through the failover instead of latching fail-closed while
	// the group is still choosing a primary).
	Attempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts (defaults 50ms and 2s); each pause is jittered uniformly
	// in [base/2, base) at its current exponent so retrying replicas
	// never thundering-herd a recovering sequencer.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Client overrides the HTTP client (tests); Timeout still bounds
	// each attempt through the request context.
	Client *http.Client
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 15 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 8
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// RemoteLedger implements Ledger against a gdpledgerd sequencer (or a
// replicated group of them). Reads (Spent, Remaining, OpCount) report
// the sequencer's authoritative state when reachable and fall back to
// the last state an admission response carried; Ops and AuditReport
// require the sequencer. Safe for concurrent use.
type RemoteLedger struct {
	members []string // normalized base URLs, ≥1
	key     string
	budget  dp.Params
	opts    RemoteOptions

	// clientID is drawn from OS entropy per open; opSeq numbers this
	// client's spends. Together they make op IDs unique across every
	// replica and restart without coordination.
	clientID string
	opSeq    atomic.Uint64

	// Observability counters (surfaced in RemoteStatus).
	retries    atomic.Uint64 // attempts beyond the first, any cause
	failovers  atomic.Uint64 // member-walk advances
	reattaches atomic.Uint64 // successful re-attach after a fence

	mu      sync.Mutex
	member  int // index of the member currently believed primary
	epoch   string
	spent   dp.Params // last authoritative spent observed
	opCount int
	failed  error
	rng     *mrand.Rand // backoff jitter; never touches released bytes
}

var _ Ledger = (*RemoteLedger)(nil)

// OpenRemoteLedger attaches to the sequencer at base — either one
// address ("http://127.0.0.1:8850") or a comma-separated member list
// ("a:8850,b:8850,c:8850") for a replicated group — opening (or
// replaying) the durable ledger for key under the given budget, and
// pins the sequencer's epoch token. Attaching an existing key under a
// different budget fails with ErrBudgetMismatch. The attach itself is
// retried (walking the member list) like a spend; an unreachable
// sequencer fails the open (nothing to latch yet).
func OpenRemoteLedger(base, key string, budget dp.Params, opts RemoteOptions) (*RemoteLedger, error) {
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	if key == "" {
		return nil, errors.New("accountant: remote ledger key is required")
	}
	var members []string
	for _, m := range strings.Split(base, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if !strings.Contains(m, "://") {
			m = "http://" + m
		}
		members = append(members, strings.TrimSuffix(m, "/"))
	}
	if len(members) == 0 {
		return nil, errors.New("accountant: remote ledger address is required")
	}
	var idBytes [8]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		return nil, fmt.Errorf("accountant: drawing remote-ledger client id: %w", err)
	}
	seed := binary.LittleEndian.Uint64(idBytes[:])
	r := &RemoteLedger{
		members:  members,
		key:      key,
		budget:   budget,
		opts:     opts.withDefaults(),
		clientID: fmt.Sprintf("%016x", seed),
		rng:      mrand.New(mrand.NewSource(int64(seed))),
	}
	ctx, cancel := r.opContext(context.Background())
	defer cancel()
	var res wireState
	err := r.call(ctx, http.MethodPost, "/attach", r.attachBody, &res)
	if err != nil {
		return nil, fmt.Errorf("accountant: attaching remote ledger %q at %s: %w", key, base, err)
	}
	got := dp.Params{Epsilon: res.Budget.Epsilon, Delta: res.Budget.Delta}
	if got != budget {
		return nil, fmt.Errorf("%w: sequencer has %s, configured %s", ErrBudgetMismatch, got, budget)
	}
	if res.Epoch == "" {
		return nil, fmt.Errorf("%w: attach response carries no epoch", ErrRemoteProtocol)
	}
	r.mu.Lock()
	r.epoch = res.Epoch
	r.mu.Unlock()
	r.observe(res)
	return r, nil
}

func (r *RemoteLedger) attachBody() any {
	return map[string]any{"budget": wireBudget{r.budget.Epsilon, r.budget.Delta}}
}

// opContext derives the deadline bounding one whole operation. An
// earlier caller deadline wins.
func (r *RemoteLedger) opContext(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, r.opts.OpTimeout)
}

// Addr returns the sequencer base URL the client currently believes is
// primary.
func (r *RemoteLedger) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[r.member]
}

// Key returns the budget key this ledger spends under.
func (r *RemoteLedger) Key() string { return r.key }

// RemoteStatus is the remote ledger's durability panel (the serving
// layer's /budget endpoint embeds it).
type RemoteStatus struct {
	// Addr is the member currently believed primary; Members is the full
	// configured list.
	Addr    string   `json:"addr"`
	Members []string `json:"members,omitempty"`
	Key     string   `json:"key"`
	Epoch   string   `json:"epoch"`
	// Retries counts attempts beyond the first; Failovers counts member
	// walks; Reattaches counts successful re-attachments after a fence.
	Retries    uint64 `json:"retries"`
	Failovers  uint64 `json:"failovers"`
	Reattaches uint64 `json:"reattaches"`
	// Err is the latched failure, "" while healthy.
	Err string `json:"error,omitempty"`
}

// Status reports the client's view of its sequencer binding.
func (r *RemoteLedger) Status() RemoteStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RemoteStatus{
		Addr:       r.members[r.member],
		Key:        r.key,
		Epoch:      r.epoch,
		Retries:    r.retries.Load(),
		Failovers:  r.failovers.Load(),
		Reattaches: r.reattaches.Load(),
	}
	if len(r.members) > 1 {
		st.Members = r.members
	}
	if r.failed != nil && !errors.Is(r.failed, ErrLedgerClosed) {
		st.Err = r.failed.Error()
	}
	return st
}

// Close latches the client closed: subsequent spends fail with
// ErrLedgerClosed. The sequencer keeps the durable state — a new
// RemoteLedger (any replica) reattaches to the same budget.
func (r *RemoteLedger) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed == nil {
		r.failed = ErrLedgerClosed
	}
	return nil
}

// wireBudget and the response shapes mirror internal/ledgerd's wire
// protocol (kept in sync by the conformance tests, which run this
// client against the real service).
type wireBudget struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

type wireState struct {
	Epoch     string     `json:"epoch"`
	Admitted  bool       `json:"admitted"`
	Replayed  bool       `json:"replayed"`
	Seq       int        `json:"seq"`
	Budget    wireBudget `json:"budget"`
	Spent     wireBudget `json:"spent"`
	Remaining wireBudget `json:"remaining"`
	Ops       int        `json:"ops"`
}

type wireError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Budget implements Ledger.
func (r *RemoteLedger) Budget() dp.Params { return r.budget }

// Spend implements Ledger.
func (r *RemoteLedger) Spend(label string, cost dp.Params) error {
	return r.SpendBytes([]byte(label), cost)
}

// SpendBytes implements Ledger: one idempotent admission, bounded by
// OpTimeout.
func (r *RemoteLedger) SpendBytes(label []byte, cost dp.Params) error {
	return r.SpendContext(context.Background(), string(label), cost)
}

// SpendContext is Spend with a caller-supplied context bounding the
// entire retry loop (member walks and re-attaches included); OpTimeout
// still applies on top. The op ID is fixed before the first attempt, so
// however many retries a flaky network or a failover forces, the
// sequencer group debits at most once; nil is returned only after a
// sequencer durably acked the admission.
func (r *RemoteLedger) SpendContext(ctx context.Context, label string, cost dp.Params) error {
	if err := cost.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	failed := r.failed
	r.mu.Unlock()
	if failed != nil {
		return fmt.Errorf("%w (label %q)", failed, label)
	}
	opID := fmt.Sprintf("%s-%d", r.clientID, r.opSeq.Add(1))
	ctx, cancel := r.opContext(ctx)
	defer cancel()
	var res wireState
	err := r.call(ctx, http.MethodPost, "/spend", func() any {
		r.mu.Lock()
		epoch := r.epoch
		r.mu.Unlock()
		return map[string]any{
			"epoch": epoch,
			"op_id": opID,
			"label": label,
			"cost":  wireBudget{cost.Epsilon, cost.Delta},
		}
	}, &res)
	if err != nil {
		if errors.Is(err, ErrBudgetExceeded) {
			// Definitive rejection: nothing spent, nothing latched, and
			// (spend being monotone) retrying could never succeed.
			return fmt.Errorf("%w (label %q)", err, label)
		}
		return fmt.Errorf("%w (label %q)", r.latch(err), label)
	}
	if !res.Admitted {
		// A 200 that does not admit is protocol drift; treat as latching.
		return fmt.Errorf("%w (label %q)", r.latch(ErrRemoteProtocol), label)
	}
	r.observe(res)
	return nil
}

// latch records the first fatal failure and returns the latched error.
func (r *RemoteLedger) latch(err error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed == nil {
		r.failed = fmt.Errorf("%w: %v", ErrLedgerFailed, err)
	}
	return r.failed
}

// observe folds an authoritative response into the cached read state.
// Spent is monotone, so the freshest view is the componentwise max —
// out-of-order responses from concurrent spends cannot roll it back.
func (r *RemoteLedger) observe(res wireState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spent.Epsilon = math.Max(r.spent.Epsilon, res.Spent.Epsilon)
	r.spent.Delta = math.Max(r.spent.Delta, res.Spent.Delta)
	if res.Ops > r.opCount {
		r.opCount = res.Ops
	}
}

// refresh pulls the sequencer's authoritative state; best effort — a
// failure leaves the cache (reads must not latch the ledger, and must
// keep answering during partitions, from the last known state).
func (r *RemoteLedger) refresh() {
	ctx, cancel := r.opContext(context.Background())
	defer cancel()
	var res wireState
	if err := r.call(ctx, http.MethodGet, "", nil, &res); err == nil {
		r.observe(res)
	}
}

// Spent implements Ledger: the sequencer's authoritative total when
// reachable, else the last observed state (never ahead of the truth —
// both sources only report durably admitted ops).
func (r *RemoteLedger) Spent() dp.Params {
	r.refresh()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spent
}

// Remaining implements Ledger.
func (r *RemoteLedger) Remaining() dp.Params {
	spent := r.Spent()
	return dp.Params{
		Epsilon: math.Max(0, r.budget.Epsilon-spent.Epsilon),
		Delta:   math.Max(0, r.budget.Delta-spent.Delta),
	}
}

// OpCount implements Ledger.
func (r *RemoteLedger) OpCount() int {
	r.refresh()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opCount
}

// Ops implements Ledger: the sequencer's audit trail (labels exactly as
// spent; the sequencer strips its op-ID envelope). Returns nil when the
// sequencer is unreachable — the trail lives with the WAL, not here.
func (r *RemoteLedger) Ops() []Op {
	ctx, cancel := r.opContext(context.Background())
	defer cancel()
	var res struct {
		Ops []struct {
			Seq     int     `json:"seq"`
			Label   string  `json:"label"`
			Epsilon float64 `json:"epsilon"`
			Delta   float64 `json:"delta"`
		} `json:"ops"`
	}
	if err := r.call(ctx, http.MethodGet, "/ops", nil, &res); err != nil {
		return nil
	}
	out := make([]Op, len(res.Ops))
	for i, op := range res.Ops {
		out[i] = Op{Seq: op.Seq, Label: op.Label, Cost: dp.Params{Epsilon: op.Epsilon, Delta: op.Delta}}
	}
	return out
}

// AuditReport implements Ledger.
func (r *RemoteLedger) AuditReport() string {
	ops := r.Ops()
	spent := r.Spent()
	var b strings.Builder
	fmt.Fprintf(&b, "privacy ledger (remote %s, key %s): budget %s, spent %s, %d ops\n",
		strings.Join(r.members, ","), r.key, r.budget, spent, len(ops))
	for _, op := range ops {
		fmt.Fprintf(&b, "  %3d. %-24s %s\n", op.Seq, op.Label, op.Cost)
	}
	return b.String()
}

// attempt outcome classes.
const (
	classOK    = iota // definitive success
	classFatal        // definitive failure: return to caller now
	classRetry        // transient: back off, walk, retry
	classFence        // epoch-fenced / not-attached / not-primary
)

// call runs one operation against /v1/ledgers/{key}{path} under ctx
// with the retry policy: transient failures (network errors, timeouts,
// 5xx) back off exponentially with jitter; definitive answers return
// immediately. bodyFn (nil for GETs) rebuilds the request body per
// attempt so a re-attach mid-loop refreshes the epoch it carries.
//
// With one configured member, a fence is fatal (the caller latches —
// the sequencer restarted under this client and only a fresh open may
// re-pin state). With several, a fence or not-primary triggers the
// failover walk: advance to the next member, re-attach to adopt its
// term, and retry the same op ID.
func (r *RemoteLedger) call(ctx context.Context, method, path string, bodyFn func() any, out any) error {
	var lastErr error
	for attempt := 0; attempt < r.opts.Attempts; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			if err := r.sleepBackoff(ctx, attempt); err != nil {
				return fmt.Errorf("accountant: remote-ledger op deadline exhausted after %d attempts: %w (last: %v)",
					attempt, err, lastErr)
			}
		}
		var payload []byte
		if bodyFn != nil {
			var err error
			if payload, err = json.Marshal(bodyFn()); err != nil {
				return err
			}
		}
		r.mu.Lock()
		member := r.members[r.member]
		r.mu.Unlock()
		url := member + "/v1/ledgers/" + r.key + path
		class, err := r.attempt(ctx, method, url, payload, out)
		switch class {
		case classOK:
			return nil
		case classFatal:
			return err
		case classRetry:
			lastErr = err
			r.advanceMember()
		case classFence:
			lastErr = err
			if len(r.members) == 1 {
				// Single-node semantics (PR 8): a fence is definitive — the
				// caller must latch fail-closed.
				return err
			}
			if rerr := r.reattachWalk(ctx); rerr != nil {
				lastErr = fmt.Errorf("re-attach after fence: %w", rerr)
			}
		}
	}
	return fmt.Errorf("accountant: remote ledger %s unreachable after %d attempts: %w",
		strings.Join(r.members, ","), r.opts.Attempts, lastErr)
}

// advanceMember rotates to the next configured member (no-op with one).
func (r *RemoteLedger) advanceMember() {
	if len(r.members) == 1 {
		return
	}
	r.mu.Lock()
	r.member = (r.member + 1) % len(r.members)
	r.mu.Unlock()
	r.failovers.Add(1)
}

// reattachWalk re-attaches after a fence, trying every member once
// starting with the CURRENT one: an epoch-fenced refusal comes from the
// live primary itself (it holds a newer term than the epoch we sent),
// so the current member is exactly where the attach must land first —
// advancing before attaching would orbit the group without ever
// adopting the new term. A not-primary refusal walks on to the next
// member instead.
func (r *RemoteLedger) reattachWalk(ctx context.Context) error {
	var lastErr error
	for i := 0; i < len(r.members); i++ {
		if i > 0 {
			r.advanceMember()
		}
		if err := r.reattach(ctx); err == nil {
			return nil
		} else {
			lastErr = err
		}
		if ctx.Err() != nil {
			return lastErr
		}
	}
	// No member took the attach; leave the cursor advanced so the next
	// spend attempt probes somewhere new.
	r.advanceMember()
	return lastErr
}

// reattach re-runs the attach handshake against the current member to
// adopt its epoch (in group mode: the new primary's term). One single
// attempt — the surrounding call loop owns retries and further walking.
func (r *RemoteLedger) reattach(ctx context.Context) error {
	payload, err := json.Marshal(r.attachBody())
	if err != nil {
		return err
	}
	r.mu.Lock()
	member := r.members[r.member]
	r.mu.Unlock()
	var res wireState
	class, err := r.attempt(ctx, http.MethodPost, member+"/v1/ledgers/"+r.key+"/attach", payload, &res)
	if class != classOK {
		return err
	}
	got := dp.Params{Epsilon: res.Budget.Epsilon, Delta: res.Budget.Delta}
	if got != r.budget || res.Epoch == "" {
		return fmt.Errorf("%w: re-attach returned budget %s epoch %q", ErrRemoteProtocol, got, res.Epoch)
	}
	r.mu.Lock()
	r.epoch = res.Epoch
	r.mu.Unlock()
	r.observe(res)
	r.reattaches.Add(1)
	return nil
}

// attempt is one HTTP round trip, classified.
func (r *RemoteLedger) attempt(ctx context.Context, method, url string, payload []byte, out any) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	var bodyReader io.Reader
	if payload != nil {
		bodyReader = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, bodyReader)
	if err != nil {
		return classFatal, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return classRetry, err // network/timeout: transient
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return classRetry, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return classFatal, fmt.Errorf("%w: %v", ErrRemoteProtocol, err)
			}
		}
		return classOK, nil
	}
	var we wireError
	_ = json.Unmarshal(data, &we)
	msg := we.Error
	if msg == "" {
		msg = strings.TrimSpace(string(data))
	}
	switch {
	case we.Code == "budget-exceeded":
		return classFatal, fmt.Errorf("%w: %s", ErrBudgetExceeded, msg)
	case we.Code == "budget-mismatch":
		return classFatal, fmt.Errorf("%w: %s", ErrBudgetMismatch, msg)
	case we.Code == "epoch-fenced", we.Code == "not-attached", we.Code == "not-primary":
		return classFence, fmt.Errorf("accountant: sequencer fenced this writer (%s): %s", we.Code, msg)
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusServiceUnavailable:
		// Sequencer-side trouble (including "no-quorum"): retrying under
		// the same op ID is safe and may land once it recovers (or re-ack
		// an admitted op).
		return classRetry, fmt.Errorf("accountant: sequencer error (HTTP %d, %s): %s", resp.StatusCode, we.Code, msg)
	default:
		return classFatal, fmt.Errorf("%w: HTTP %d (%s): %s", ErrRemoteProtocol, resp.StatusCode, we.Code, msg)
	}
}

// sleepBackoff pauses before retry #attempt: exponential in the attempt
// number, capped at BackoffMax, jittered uniformly in [d/2, d). The
// context cuts the pause short — the op deadline outranks politeness.
func (r *RemoteLedger) sleepBackoff(ctx context.Context, attempt int) error {
	d := r.opts.BackoffBase << (attempt - 1)
	if d > r.opts.BackoffMax || d <= 0 {
		d = r.opts.BackoffMax
	}
	r.mu.Lock()
	jittered := d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
	r.mu.Unlock()
	select {
	case <-time.After(jittered):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
