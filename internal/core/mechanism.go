package core

import (
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/rng"
)

// NoiseMechanism selects the Phase-2 noise distribution.
type NoiseMechanism int

// Mechanisms. MechGaussian is the paper's choice ((εg, δ)-group-DP).
// MechLaplace and MechGeometric provide *pure* εg-group DP (δ = 0) as an
// extension; the geometric mechanism additionally keeps released counts
// integral. Ablation A7 compares all three.
const (
	MechGaussian NoiseMechanism = iota + 1
	MechLaplace
	MechGeometric
)

// String implements fmt.Stringer.
func (m NoiseMechanism) String() string {
	switch m {
	case MechGaussian:
		return "gaussian"
	case MechLaplace:
		return "laplace"
	case MechGeometric:
		return "geometric"
	default:
		return fmt.Sprintf("NoiseMechanism(%d)", int(m))
	}
}

// Valid reports whether m is a known mechanism.
func (m NoiseMechanism) Valid() bool {
	return m == MechGaussian || m == MechLaplace || m == MechGeometric
}

// ErrBadMechanism reports an unknown noise mechanism.
var ErrBadMechanism = fmt.Errorf("core: unknown noise mechanism")

// ReleaseCountWith answers the association-count query at one level with
// εg-group DP using the chosen noise mechanism. The Gaussian path matches
// ReleaseCount; Laplace and geometric ignore δ and deliver pure εg-group
// DP at L1 sensitivity Δℓ.
func ReleaseCountWith(t *hierarchy.Tree, level int, p dp.Params, model GroupModel, calib Calibration, mech NoiseMechanism, src *rng.Source) (LevelRelease, error) {
	if mech == MechGaussian {
		rel, err := ReleaseCount(t, level, p, model, calib, src)
		if err != nil {
			return LevelRelease{}, err
		}
		rel.MechName = mech.String()
		return rel, nil
	}
	if !mech.Valid() {
		return LevelRelease{}, fmt.Errorf("%w: %d", ErrBadMechanism, int(mech))
	}
	if t == nil {
		return LevelRelease{}, ErrNilTree
	}
	if src == nil {
		return LevelRelease{}, dp.ErrNilSource
	}
	if err := p.Validate(); err != nil {
		return LevelRelease{}, err
	}
	sens, err := Sensitivity(t, level, model)
	if err != nil {
		return LevelRelease{}, err
	}
	trueCount := t.NumEdges()
	rel := LevelRelease{
		Level: level, Model: model, Calibration: calib,
		ModelName: model.String(), CalibName: calib.String(), MechName: mech.String(),
		Params: p, Epsilon: p.Epsilon, Delta: 0,
		Sensitivity: sens,
		TrueCount:   trueCount, NoisyCount: float64(trueCount),
	}
	if sens > 0 {
		switch mech {
		case MechLaplace:
			m, err := dp.NewLaplace(p.Epsilon, float64(sens), src)
			if err != nil {
				return LevelRelease{}, err
			}
			rel.Sigma = m.Scale() * math.Sqrt2 // stddev of Laplace(b) = b√2
			rel.NoisyCount = m.Perturb(float64(trueCount))
		case MechGeometric:
			m, err := dp.NewGeometric(p.Epsilon, float64(sens), src)
			if err != nil {
				return LevelRelease{}, err
			}
			rel.Sigma = m.Scale()
			rel.NoisyCount = float64(m.PerturbInt(trueCount))
		}
	}
	if trueCount > 0 {
		rel.RER = math.Abs(rel.NoisyCount-float64(trueCount)) / float64(trueCount)
	}
	return rel, nil
}

// ExpectedRERWith returns the closed-form expected relative error rate of
// a level release under the chosen mechanism.
func ExpectedRERWith(t *hierarchy.Tree, level int, p dp.Params, model GroupModel, calib Calibration, mech NoiseMechanism) (float64, error) {
	if mech == MechGaussian {
		return ExpectedRER(t, level, p, model, calib)
	}
	if !mech.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrBadMechanism, int(mech))
	}
	if t == nil {
		return 0, ErrNilTree
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	sens, err := Sensitivity(t, level, model)
	if err != nil {
		return 0, err
	}
	total := t.NumEdges()
	if total == 0 || sens == 0 {
		return 0, nil
	}
	switch mech {
	case MechLaplace:
		// E|Laplace(b)| = b = Δ/ε.
		return float64(sens) / p.Epsilon / float64(total), nil
	case MechGeometric:
		alpha := math.Exp(-p.Epsilon / float64(sens))
		return 2 * alpha / (1 - alpha*alpha) / float64(total), nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadMechanism, int(mech))
	}
}
