package dp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestParamsValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		p       Params
		wantErr error
	}{
		{name: "valid pure", p: Params{Epsilon: 0.5}, wantErr: nil},
		{name: "valid approx", p: Params{Epsilon: 1.5, Delta: 1e-5}, wantErr: nil},
		{name: "zero epsilon", p: Params{Epsilon: 0}, wantErr: ErrEpsilon},
		{name: "negative epsilon", p: Params{Epsilon: -1}, wantErr: ErrEpsilon},
		{name: "inf epsilon", p: Params{Epsilon: math.Inf(1)}, wantErr: ErrEpsilon},
		{name: "nan epsilon", p: Params{Epsilon: math.NaN()}, wantErr: ErrEpsilon},
		{name: "negative delta", p: Params{Epsilon: 1, Delta: -0.1}, wantErr: ErrDelta},
		{name: "delta one", p: Params{Epsilon: 1, Delta: 1}, wantErr: ErrDelta},
		{name: "nan delta", p: Params{Epsilon: 1, Delta: math.NaN()}, wantErr: ErrDelta},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			err := tc.p.Validate()
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestParamsPureAndString(t *testing.T) {
	t.Parallel()
	if !(Params{Epsilon: 1}).Pure() {
		t.Error("delta=0 should be pure")
	}
	if (Params{Epsilon: 1, Delta: 1e-6}).Pure() {
		t.Error("delta>0 should not be pure")
	}
	if s := (Params{Epsilon: 0.5}).String(); s != "(ε=0.5)" {
		t.Errorf("String() = %q", s)
	}
	if s := (Params{Epsilon: 0.5, Delta: 1e-05}).String(); s != "(ε=0.5, δ=1e-05)" {
		t.Errorf("String() = %q", s)
	}
}

func TestNewLaplaceValidation(t *testing.T) {
	t.Parallel()
	src := rng.New(1)
	if _, err := NewLaplace(0, 1, src); !errors.Is(err, ErrEpsilon) {
		t.Errorf("eps=0: %v", err)
	}
	if _, err := NewLaplace(1, 0, src); !errors.Is(err, ErrSensitivity) {
		t.Errorf("sens=0: %v", err)
	}
	if _, err := NewLaplace(1, 1, nil); !errors.Is(err, ErrNilSource) {
		t.Errorf("nil src: %v", err)
	}
}

func TestLaplaceScaleAndMoments(t *testing.T) {
	t.Parallel()
	m, err := NewLaplace(0.5, 2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Scale() != 4 {
		t.Errorf("Scale = %v, want 4", m.Scale())
	}
	if m.ExpectedAbsError() != 4 {
		t.Errorf("ExpectedAbsError = %v, want 4", m.ExpectedAbsError())
	}
	const n = 200000
	const value = 1000.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := m.Perturb(value)
		sum += x
		sumAbs += math.Abs(x - value)
	}
	if mean := sum / n; math.Abs(mean-value) > 0.1 {
		t.Errorf("perturbed mean = %v, want about %v", mean, value)
	}
	if meanAbs := sumAbs / n; math.Abs(meanAbs-4)/4 > 0.03 {
		t.Errorf("E|noise| = %v, want about 4", meanAbs)
	}
}

func TestLaplaceScaleHelper(t *testing.T) {
	t.Parallel()
	b, err := LaplaceScale(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if b != 3 {
		t.Errorf("LaplaceScale = %v, want 3", b)
	}
	if _, err := LaplaceScale(-1, 1); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestLaplaceConfidenceInterval(t *testing.T) {
	t.Parallel()
	m, err := NewLaplace(1, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	w95 := m.ConfidenceInterval(0.95)
	// For b=1: w = -ln(0.05) ≈ 2.996.
	if math.Abs(w95-2.9957) > 0.01 {
		t.Errorf("95%% CI half-width = %v, want about 2.996", w95)
	}
	if !math.IsNaN(m.ConfidenceInterval(0)) || !math.IsNaN(m.ConfidenceInterval(1.5)) {
		t.Error("invalid level should return NaN")
	}
	// Empirically ~95% of draws fall inside the interval.
	const n = 100000
	in := 0
	for i := 0; i < n; i++ {
		if math.Abs(m.Perturb(0)) <= w95 {
			in++
		}
	}
	if frac := float64(in) / n; math.Abs(frac-0.95) > 0.01 {
		t.Errorf("empirical coverage = %v, want about 0.95", frac)
	}
}

func TestClassicalGaussianSigma(t *testing.T) {
	t.Parallel()
	p := Params{Epsilon: 0.5, Delta: 1e-5}
	sigma, err := ClassicalGaussianSigma(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Sqrt(2*math.Log(1.25/1e-5)) / 0.5
	if math.Abs(sigma-want) > 1e-9 {
		t.Errorf("sigma = %v, want %v", sigma, want)
	}
}

func TestClassicalGaussianErrors(t *testing.T) {
	t.Parallel()
	if _, err := ClassicalGaussianSigma(Params{Epsilon: 1.5, Delta: 1e-5}, 1); !errors.Is(err, ErrClassicalEpsilonRange) {
		t.Errorf("eps>=1: %v", err)
	}
	if _, err := ClassicalGaussianSigma(Params{Epsilon: 0.5}, 1); !errors.Is(err, ErrDeltaZero) {
		t.Errorf("delta=0: %v", err)
	}
	if _, err := ClassicalGaussianSigma(Params{Epsilon: 0.5, Delta: 1e-5}, -1); !errors.Is(err, ErrSensitivity) {
		t.Errorf("bad sens: %v", err)
	}
}

func TestAnalyticTighterThanClassical(t *testing.T) {
	t.Parallel()
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.9, 0.999} {
		p := Params{Epsilon: eps, Delta: 1e-5}
		classical, err := ClassicalGaussianSigma(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		analytic, err := AnalyticGaussianSigma(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if analytic >= classical {
			t.Errorf("eps=%v: analytic σ %v not tighter than classical %v", eps, analytic, classical)
		}
	}
}

func TestAnalyticGaussianSatisfiesDelta(t *testing.T) {
	t.Parallel()
	for _, eps := range []float64{0.1, 0.5, 1, 2, 5} {
		p := Params{Epsilon: eps, Delta: 1e-6}
		sigma, err := AnalyticGaussianSigma(p, 2.5)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		got := gaussianDelta(eps, 2.5, sigma)
		if got > p.Delta*1.0001 {
			t.Errorf("eps=%v: δ(σ)=%v exceeds target %v", eps, got, p.Delta)
		}
		// And σ is minimal up to bisection tolerance: slightly smaller σ
		// must violate the target.
		if gaussianDelta(eps, 2.5, sigma*0.99) <= p.Delta {
			t.Errorf("eps=%v: σ not minimal", eps)
		}
	}
}

func TestGaussianDeltaMonotoneInSigma(t *testing.T) {
	t.Parallel()
	prev := math.Inf(1)
	for sigma := 0.5; sigma < 50; sigma *= 1.5 {
		d := gaussianDelta(0.5, 1, sigma)
		if d > prev {
			t.Fatalf("gaussianDelta not decreasing at sigma=%v", sigma)
		}
		prev = d
	}
}

func TestGaussianPerturbMoments(t *testing.T) {
	t.Parallel()
	m, err := NewGaussianWithSigma(5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var sumSq float64
	for i := 0; i < n; i++ {
		x := m.Perturb(0)
		sumSq += x * x
	}
	sd := math.Sqrt(sumSq / n)
	if math.Abs(sd-5)/5 > 0.02 {
		t.Errorf("sample sd = %v, want about 5", sd)
	}
	if want := 5 * math.Sqrt(2/math.Pi); math.Abs(m.ExpectedAbsError()-want) > 1e-12 {
		t.Errorf("ExpectedAbsError = %v, want %v", m.ExpectedAbsError(), want)
	}
}

func TestGaussianConstructors(t *testing.T) {
	t.Parallel()
	src := rng.New(5)
	if _, err := NewGaussian(Params{Epsilon: 0.5, Delta: 1e-5}, 1, src); err != nil {
		t.Errorf("classical constructor failed: %v", err)
	}
	if _, err := NewGaussian(Params{Epsilon: 0.5, Delta: 1e-5}, 1, nil); !errors.Is(err, ErrNilSource) {
		t.Errorf("nil src: %v", err)
	}
	if _, err := NewGaussianAnalytic(Params{Epsilon: 3, Delta: 1e-5}, 1, src); err != nil {
		t.Errorf("analytic constructor failed for eps>1: %v", err)
	}
	if _, err := NewGaussianWithSigma(0, src); err == nil {
		t.Error("sigma=0 accepted")
	}
	if _, err := NewGaussianWithSigma(math.NaN(), src); err == nil {
		t.Error("sigma=NaN accepted")
	}
}

func TestGaussianConfidenceInterval(t *testing.T) {
	t.Parallel()
	m, err := NewGaussianWithSigma(1, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	w := m.ConfidenceInterval(0.95)
	if math.Abs(w-1.9600) > 0.001 {
		t.Errorf("95%% half-width = %v, want about 1.96", w)
	}
	if !math.IsNaN(m.ConfidenceInterval(-1)) {
		t.Error("invalid level should be NaN")
	}
}

func TestGaussianEpsilonInvertsAnalyticSigma(t *testing.T) {
	t.Parallel()
	// For any (eps, delta): sigma = AnalyticGaussianSigma(eps) then
	// GaussianEpsilon(sigma) must return about eps.
	for _, eps := range []float64{0.2, 0.7, 1.5, 3} {
		p := Params{Epsilon: eps, Delta: 1e-6}
		sigma, err := AnalyticGaussianSigma(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GaussianEpsilon(sigma, 2, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-eps)/eps > 1e-3 {
			t.Errorf("eps=%v: round trip gave %v", eps, got)
		}
	}
}

func TestGaussianEpsilonMonotoneInSigma(t *testing.T) {
	t.Parallel()
	prev := math.Inf(1)
	for sigma := 1.0; sigma < 100; sigma *= 2 {
		eps, err := GaussianEpsilon(sigma, 1, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		if eps > prev {
			t.Fatalf("epsilon increased with sigma at %v", sigma)
		}
		prev = eps
	}
}

func TestGaussianEpsilonValidation(t *testing.T) {
	t.Parallel()
	if _, err := GaussianEpsilon(0, 1, 1e-5); err == nil {
		t.Error("sigma=0 accepted")
	}
	if _, err := GaussianEpsilon(1, 0, 1e-5); err == nil {
		t.Error("sens=0 accepted")
	}
	if _, err := GaussianEpsilon(1, 1, 0); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := GaussianEpsilon(1, 1, 1); err == nil {
		t.Error("delta=1 accepted")
	}
}

func TestGeometricIntegralityAndMoments(t *testing.T) {
	t.Parallel()
	m, err := NewGeometric(1, 1, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	wantAlpha := math.Exp(-1)
	if math.Abs(m.Alpha()-wantAlpha) > 1e-12 {
		t.Errorf("Alpha = %v, want %v", m.Alpha(), wantAlpha)
	}
	const n = 300000
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := m.PerturbInt(100)
		sum += float64(v)
		sumAbs += math.Abs(float64(v - 100))
	}
	if mean := sum / n; math.Abs(mean-100) > 0.05 {
		t.Errorf("mean = %v, want about 100", mean)
	}
	wantAbs := 2 * wantAlpha / (1 - wantAlpha*wantAlpha)
	if meanAbs := sumAbs / n; math.Abs(meanAbs-wantAbs)/wantAbs > 0.03 {
		t.Errorf("E|noise| = %v, want about %v", meanAbs, wantAbs)
	}
	if got := m.Perturb(99.7); got != math.Trunc(got) {
		t.Errorf("Perturb returned non-integer %v", got)
	}
}

func TestGeometricValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewGeometric(0, 1, rng.New(1)); !errors.Is(err, ErrEpsilon) {
		t.Errorf("eps=0: %v", err)
	}
	if _, err := NewGeometric(1, -1, rng.New(1)); !errors.Is(err, ErrSensitivity) {
		t.Errorf("neg sens: %v", err)
	}
	if _, err := NewGeometric(1, 1, nil); !errors.Is(err, ErrNilSource) {
		t.Errorf("nil src: %v", err)
	}
}

// TestLaplaceEmpiricalPrivacy bins outputs of the Laplace mechanism on two
// adjacent inputs and checks the empirical likelihood ratio never exceeds
// e^ε by more than sampling error. This is a smoke test of the privacy
// property itself, not just the noise shape.
func TestLaplaceEmpiricalPrivacy(t *testing.T) {
	t.Parallel()
	const eps = 1.0
	m1, err := NewLaplace(eps, 1, rng.New(100))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewLaplace(eps, 1, rng.New(200))
	if err != nil {
		t.Fatal(err)
	}
	const n = 500000
	const binWidth = 0.5
	h1 := map[int]float64{}
	h2 := map[int]float64{}
	for i := 0; i < n; i++ {
		h1[int(math.Floor(m1.Perturb(0)/binWidth))]++
		h2[int(math.Floor(m2.Perturb(1)/binWidth))]++
	}
	bound := math.Exp(eps)
	for bin, c1 := range h1 {
		c2 := h2[bin]
		if c1 < 2000 || c2 < 2000 {
			continue // too small for a stable ratio
		}
		ratio := c1 / c2
		if ratio > bound*1.15 || 1/ratio > bound*1.15 {
			t.Errorf("bin %d: likelihood ratio %v exceeds e^ε=%v", bin, ratio, bound)
		}
	}
}
