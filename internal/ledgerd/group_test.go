package ledgerd_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/accountant"
	"repro/internal/accountant/ledgertest"
	"repro/internal/dp"
	"repro/internal/ledgerd"
)

// clusterNode is one in-process group member: a real HTTP listener
// whose handler is swappable (so a member can "die" and be replaced on
// the same address, like a restarted process keeps its host:port) and a
// FaultTransport arming this node's OUTBOUND replication traffic.
type clusterNode struct {
	id      string
	dir     string
	srv     *httptest.Server
	fault   *ledgerd.FaultTransport
	group   *ledgerd.Group
	handler atomic.Pointer[http.Handler]
}

// cluster is a 3-node (or N-node) in-process sequencer group. Listeners
// come up first so the member map is known before any Group starts —
// the same bootstrap order real deployments use (addresses are config,
// processes come and go).
type cluster struct {
	t     *testing.T
	ids   []string
	nodes map[string]*clusterNode
	peers map[string]string
}

func newCluster(t *testing.T, n int, electionTimeout time.Duration) *cluster {
	t.Helper()
	c := &cluster{t: t, nodes: make(map[string]*clusterNode), peers: make(map[string]string)}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i+1)
		nd := &clusterNode{id: id, dir: filepath.Join(t.TempDir(), id)}
		nd.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := nd.handler.Load()
			if h == nil {
				http.Error(w, "member not running", http.StatusServiceUnavailable)
				return
			}
			(*h).ServeHTTP(w, r)
		}))
		c.ids = append(c.ids, id)
		c.nodes[id] = nd
		c.peers[id] = nd.srv.URL
	}
	for _, id := range c.ids {
		c.start(id, electionTimeout)
	}
	t.Cleanup(c.close)
	return c
}

// start boots (or reboots) one member over whatever is in its dir.
func (c *cluster) start(id string, electionTimeout time.Duration) *ledgerd.Group {
	c.t.Helper()
	nd := c.nodes[id]
	nd.fault = &ledgerd.FaultTransport{Inner: &ledgerd.HTTPGroupTransport{}}
	g, err := ledgerd.NewGroup(ledgerd.GroupOptions{
		NodeID:          id,
		Peers:           c.peers,
		Dir:             nd.dir,
		HeartbeatEvery:  20 * time.Millisecond,
		ElectionTimeout: electionTimeout,
		RPCTimeout:      time.Second,
		Transport:       nd.fault,
		Logf:            c.t.Logf,
	})
	if err != nil {
		c.t.Fatalf("starting member %s: %v", id, err)
	}
	nd.group = g
	h := ledgerd.NewGroupHandler(g)
	nd.handler.Store(&h)
	return g
}

// stop closes one member's Group but keeps its listener: requests now
// bounce, like a crashed process behind a live address.
func (c *cluster) stop(id string) {
	nd := c.nodes[id]
	nd.handler.Store(nil)
	if nd.group != nil {
		nd.group.Close()
	}
}

func (c *cluster) close() {
	for _, id := range c.ids {
		if g := c.nodes[id].group; g != nil {
			g.Close()
		}
	}
	for _, id := range c.ids {
		c.nodes[id].srv.Close()
	}
}

func (c *cluster) group(id string) *ledgerd.Group { return c.nodes[id].group }

// members is the comma-joined address list a RemoteLedger client gets.
func (c *cluster) members() string {
	urls := make([]string, len(c.ids))
	for i, id := range c.ids {
		urls[i] = c.peers[id]
	}
	return strings.Join(urls, ",")
}

// partition cuts id off from the group in BOTH directions: its own
// outbound traffic is dropped and every other member drops traffic
// toward it. Client HTTP (spend/attach) still reaches it — exactly the
// dangerous shape: a fenced ex-primary that looks alive to clients.
func (c *cluster) partition(id string) {
	c.nodes[id].fault.DropAll()
	for _, other := range c.ids {
		if other != id {
			c.nodes[other].fault.Drop(c.peers[id])
		}
	}
}

func (c *cluster) heal() {
	for _, nd := range c.nodes {
		nd.fault.Heal()
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// groupRemote is the multi-member client policy for tests: enough
// attempts to ride out a deliberate failover, no real waiting.
func groupRemote() accountant.RemoteOptions {
	return accountant.RemoteOptions{
		Timeout:     2 * time.Second,
		OpTimeout:   30 * time.Second,
		Attempts:    30,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

func TestGroupPromoteSpendReplicate(t *testing.T) {
	c := newCluster(t, 3, -1) // manual promotion: fully deterministic
	g1 := c.group("n1")
	if err := g1.Promote(); err != nil {
		t.Fatalf("promoting n1: %v", err)
	}
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	att, err := g1.Attach("k", budget)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if att.Epoch != "term:1" {
		t.Fatalf("epoch %q, want term:1", att.Epoch)
	}
	cost := dp.Params{Epsilon: 0.1, Delta: 1e-6}
	for i := 1; i <= 3; i++ {
		res, err := g1.Spend("k", att.Epoch, fmt.Sprintf("op-%d", i), fmt.Sprintf("q%d", i), cost)
		if err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
		if res.Replayed || res.Seq != i {
			t.Fatalf("spend %d = %+v, want fresh seq %d", i, res, i)
		}
	}
	// An acked spend is already durable on a majority; a retry replays.
	again, err := g1.Spend("k", att.Epoch, "op-2", "q2", cost)
	if err != nil || !again.Replayed || again.Seq != 2 || again.OpCount != 3 {
		t.Fatalf("retried spend = %+v, %v; want replayed seq 2 of 3", again, err)
	}
	// A stale epoch is fenced exactly like single-node mode.
	if _, err := g1.Spend("k", "term:0", "op-9", "q9", cost); !errors.Is(err, ledgerd.ErrEpochFenced) {
		t.Fatalf("stale-epoch spend: got %v, want ErrEpochFenced", err)
	}
	// Followers refuse client traffic — the member walk is the client's
	// job, not silent forwarding.
	if _, err := c.group("n2").Spend("k", att.Epoch, "op-9", "q9", cost); !errors.Is(err, ledgerd.ErrNotPrimary) {
		t.Fatalf("follower spend: got %v, want ErrNotPrimary", err)
	}
	if _, err := c.group("n3").Attach("k", budget); !errors.Is(err, ledgerd.ErrNotPrimary) {
		t.Fatalf("follower attach: got %v, want ErrNotPrimary", err)
	}
	// Heartbeats carry the commit index; followers converge on the
	// applied state without any client traffic reaching them.
	for _, id := range []string{"n2", "n3"} {
		waitFor(t, 5*time.Second, id+" applying the committed log", func() bool {
			st := c.group(id).GroupStatus()
			return st.Applied == g1.GroupStatus().Commit && st.Keys == 1
		})
	}
}

// TestGroupConformance runs the shared ledger conformance suite through
// the full stack: RemoteLedger client → HTTP → replicated 3-node group.
// The group must be indistinguishable from any other Ledger backend —
// including exact admission counts under concurrent drain.
func TestGroupConformance(t *testing.T) {
	ledgertest.Run(t, ledgertest.Factory{
		New: func(t *testing.T, budget dp.Params) accountant.Ledger {
			c := newCluster(t, 3, -1)
			if err := c.group("n1").Promote(); err != nil {
				t.Fatalf("promoting n1: %v", err)
			}
			rl, err := accountant.OpenRemoteLedger(c.members(), "conf", budget, groupRemote())
			if err != nil {
				t.Fatalf("OpenRemoteLedger: %v", err)
			}
			return rl
		},
		// Fail-closed latching has its own group-shaped test below (the
		// Factory.Fail hook has no handle on the cluster to kill).
	})
}

// TestGroupFailClosedLatching is the group-backed half of the
// conformance Fail check, written directly (the Factory.Fail hook has
// no handle on the cluster): once every member is gone, the client
// latches and stays latched.
func TestGroupFailClosedLatching(t *testing.T) {
	c := newCluster(t, 3, -1)
	if err := c.group("n1").Promote(); err != nil {
		t.Fatalf("promoting n1: %v", err)
	}
	budget := dp.Params{Epsilon: 1, Delta: 1e-4}
	rl, err := accountant.OpenRemoteLedger(c.members(), "latch", budget, groupRemote())
	if err != nil {
		t.Fatalf("OpenRemoteLedger: %v", err)
	}
	per := dp.Params{Epsilon: 0.1, Delta: 1e-5}
	if err := rl.Spend("healthy", per); err != nil {
		t.Fatalf("spend before failure: %v", err)
	}
	before := rl.Spent()
	for _, id := range c.ids {
		c.stop(id)
	}
	if err := rl.Spend("after-failure", per); err == nil {
		t.Fatal("spend with the whole group down succeeded")
	}
	for i := 0; i < 3; i++ {
		if err := rl.Spend(fmt.Sprintf("latched-%d", i), per); !errors.Is(err, accountant.ErrLedgerFailed) {
			t.Fatalf("spend %d after latch: got %v, want ErrLedgerFailed", i, err)
		}
	}
	if after := rl.Spent(); after.Epsilon < before.Epsilon || after.Delta < before.Delta {
		t.Fatalf("spent decreased across failure: %v -> %v", before, after)
	}
	if st := rl.Status(); st.Err == "" {
		t.Fatal("latched status reports no error")
	}
}

// TestGroupFencedExPrimaryCannotAdmit is the partition-injection
// safety test the tentpole promises: once a new term exists, the
// partitioned ex-primary can NEVER admit a spend the new term doesn't
// know about — not while partitioned (no quorum), not after healing
// (fenced and stepped down). Its orphaned log suffix is truncated, so
// the op it failed to admit reappears at most once, on the new primary.
func TestGroupFencedExPrimaryCannotAdmit(t *testing.T) {
	c := newCluster(t, 3, -1)
	g1 := c.group("n1")
	if err := g1.Promote(); err != nil {
		t.Fatalf("promoting n1: %v", err)
	}
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	att1, err := g1.Attach("k", budget)
	if err != nil {
		t.Fatalf("attach on n1: %v", err)
	}
	cost := dp.Params{Epsilon: 0.1, Delta: 1e-6}
	for i := 1; i <= 2; i++ {
		if _, err := g1.Spend("k", att1.Epoch, fmt.Sprintf("op-%d", i), fmt.Sprintf("q%d", i), cost); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}

	c.partition("n1")

	// The partitioned primary appends op-3 locally but cannot reach a
	// majority: the spend MUST be refused (logged-not-admitted).
	if _, err := g1.Spend("k", att1.Epoch, "op-3", "q3", cost); !errors.Is(err, ledgerd.ErrNoQuorum) {
		t.Fatalf("partitioned-primary spend: got %v, want ErrNoQuorum", err)
	}
	orphanLen := g1.GroupStatus().LogLen

	// n2 promotes against the surviving majority and adopts term 2.
	g2 := c.group("n2")
	if err := g2.Promote(); err != nil {
		t.Fatalf("promoting n2: %v", err)
	}
	att2, err := g2.Attach("k", budget)
	if err != nil {
		t.Fatalf("re-attach on n2: %v", err)
	}
	if att2.Epoch != "term:2" || att2.OpCount != 2 {
		t.Fatalf("re-attach = %+v, want term:2 with the 2 committed ops", att2)
	}
	// The client retries op-3 (same ID) against the new primary: a fresh
	// admission — the ex-primary's orphaned copy never committed.
	res, err := g2.Spend("k", att2.Epoch, "op-3", "q3", cost)
	if err != nil || res.Replayed || res.Seq != 3 {
		t.Fatalf("op-3 on new primary = %+v, %v; want fresh seq 3", res, err)
	}

	// Still partitioned, the ex-primary can admit NOTHING: its own log
	// has an uncommitted suffix it can never settle.
	if _, err := g1.Spend("k", att1.Epoch, "op-4", "q4", cost); !errors.Is(err, ledgerd.ErrNoQuorum) {
		t.Fatalf("ex-primary spend while partitioned: got %v, want ErrNoQuorum", err)
	}

	c.heal()
	// The new primary's replication stream fences n1: it adopts term 2,
	// steps down, truncates the orphaned op-3 copy and converges on the
	// committed log.
	waitFor(t, 10*time.Second, "n1 stepping down and converging", func() bool {
		st := c.group("n1").GroupStatus()
		want := g2.GroupStatus()
		return st.Role == "follower" && st.Term == want.Term &&
			st.LogLen == want.LogLen && st.Applied == want.Commit
	})
	if _, err := g1.Spend("k", att1.Epoch, "op-5", "q5", cost); !errors.Is(err, ledgerd.ErrNotPrimary) {
		t.Fatalf("fenced ex-primary spend after heal: got %v, want ErrNotPrimary", err)
	}
	// Exactly once: op-3 appears a single time in the audit trail.
	ops, err := g2.Ops("k")
	if err != nil {
		t.Fatalf("Ops: %v", err)
	}
	if len(ops) != 3 {
		t.Fatalf("trail has %d ops, want 3: %+v", len(ops), ops)
	}
	if g2.GroupStatus().LogLen == orphanLen {
		t.Log("note: new log coincidentally as long as the orphaned one (barrier replaced orphan)")
	}
}

// TestGroupFailoverMidDrainExactness is the acceptance invariant under
// -race: concurrent clients drain a shared budget through the member
// list while the primary is partitioned away mid-drain and a new one is
// promoted. Admitted ops must equal EXACTLY the budgeted count — no
// double admission across the failover, no lost slots.
func TestGroupFailoverMidDrainExactness(t *testing.T) {
	c := newCluster(t, 3, -1)
	if err := c.group("n1").Promote(); err != nil {
		t.Fatalf("promoting n1: %v", err)
	}
	const slots = 20
	budget := dp.Params{Epsilon: 1, Delta: 1e-4}
	per := dp.Params{Epsilon: budget.Epsilon / slots, Delta: budget.Delta / slots}
	rl, err := accountant.OpenRemoteLedger(c.members(), "drain", budget, groupRemote())
	if err != nil {
		t.Fatalf("OpenRemoteLedger: %v", err)
	}

	var admits, rejects atomic.Int64
	var wg sync.WaitGroup
	const spenders = 8
	for g := 0; g < spenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				err := rl.Spend(fmt.Sprintf("g%d-i%d", g, i), per)
				switch {
				case err == nil:
					admits.Add(1)
				case errors.Is(err, accountant.ErrBudgetExceeded):
					rejects.Add(1)
				default:
					t.Errorf("spend g%d-i%d: %v", g, i, err)
				}
			}
		}(g)
	}

	// Mid-drain: cut the primary off and immediately promote a survivor.
	// In-flight spends ride the retry walk; an op the ex-primary logged
	// but could not commit is re-driven (same op ID) on the new primary.
	// Majority fsync means the two survivors can legitimately differ by
	// an in-flight entry, and a voter refuses any candidate behind its
	// own log — so try them longest-log-first and retry briefly.
	waitFor(t, 10*time.Second, "half the budget drained", func() bool { return admits.Load() >= slots/3 })
	c.partition("n1")
	promoted := ""
	deadline := time.Now().Add(5 * time.Second)
	for promoted == "" {
		order := []string{"n2", "n3"}
		if c.group("n3").GroupStatus().LogLen > c.group("n2").GroupStatus().LogLen {
			order = []string{"n3", "n2"}
		}
		var lastErr error
		for _, id := range order {
			if err := c.group(id).Promote(); err != nil {
				lastErr = err
				continue
			}
			promoted = id
			break
		}
		if promoted == "" && time.Now().After(deadline) {
			t.Fatalf("promoting a survivor mid-drain: %v", lastErr)
		}
	}
	wg.Wait()

	if got := admits.Load(); got != slots {
		t.Fatalf("drained %d admitted ops across the failover, want exactly %d (rejects %d)",
			got, slots, rejects.Load())
	}
	if err := rl.Spend("post-drain", per); !errors.Is(err, accountant.ErrBudgetExceeded) {
		t.Fatalf("post-drain spend: got %v, want ErrBudgetExceeded", err)
	}
	st := rl.Status()
	if st.Failovers == 0 || st.Reattaches == 0 {
		t.Fatalf("client status %+v: expected failovers and reattaches > 0", st)
	}
	// The surviving group's trail must hold exactly the admitted ops.
	ops, err := c.group(promoted).Ops("drain")
	if err != nil {
		t.Fatalf("Ops on new primary: %v", err)
	}
	if len(ops) != slots {
		t.Fatalf("group trail has %d ops, want %d", len(ops), slots)
	}
	seen := make(map[string]bool, len(ops))
	for _, op := range ops {
		if seen[op.Label] {
			t.Fatalf("label %q admitted twice", op.Label)
		}
		seen[op.Label] = true
	}
	c.heal()
}

// TestGroupMemberReplacement is the dead-member runbook: stop a
// follower, destroy its state, boot a fresh process under the same
// member ID and address with an EMPTY dir. The leader backtracks its
// nextIndex and streams the full log; the replacement converges on the
// committed state with no operator copying.
func TestGroupMemberReplacement(t *testing.T) {
	c := newCluster(t, 3, -1)
	g1 := c.group("n1")
	if err := g1.Promote(); err != nil {
		t.Fatalf("promoting n1: %v", err)
	}
	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	att, err := g1.Attach("k", budget)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	cost := dp.Params{Epsilon: 0.05, Delta: 1e-7}
	for i := 1; i <= 5; i++ {
		if _, err := g1.Spend("k", att.Epoch, fmt.Sprintf("op-%d", i), "q", cost); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}

	c.stop("n3")
	// The group keeps admitting on the surviving majority.
	for i := 6; i <= 8; i++ {
		if _, err := g1.Spend("k", att.Epoch, fmt.Sprintf("op-%d", i), "q", cost); err != nil {
			t.Fatalf("spend %d with n3 down: %v", i, err)
		}
	}

	// Replace: same ID, same address, empty dir.
	if err := os.RemoveAll(c.nodes["n3"].dir); err != nil {
		t.Fatalf("wiping n3 dir: %v", err)
	}
	c.start("n3", -1)
	want := g1.GroupStatus()
	waitFor(t, 10*time.Second, "replacement n3 catching up", func() bool {
		st := c.group("n3").GroupStatus()
		return st.LogLen == want.LogLen && st.Applied == want.Commit && st.Term == want.Term
	})
	if ready, reason := c.group("n3").Ready(); !ready {
		t.Fatalf("replacement not ready: %s", reason)
	}
}

// TestGroupAutoElection exercises the self-driving mode: no manual
// promotion anywhere. The cluster elects a primary on its own, survives
// losing it, and the client never sees anything but admitted spends.
func TestGroupAutoElection(t *testing.T) {
	c := newCluster(t, 3, 150*time.Millisecond)
	// primary finds a settled leader among the given candidates. A
	// partitioned ex-primary still believes in itself (it cannot know
	// better), so failover waits must exclude it explicitly — exactly
	// why clients trust the member walk, not any one node's self-image.
	primary := func(exclude string) string {
		for _, id := range c.ids {
			if id == exclude {
				continue
			}
			st := c.group(id).GroupStatus()
			if st.Role == "primary" && st.Commit == st.LogLen && st.LogLen > 0 {
				return id
			}
		}
		return ""
	}
	var leader string
	waitFor(t, 15*time.Second, "initial election", func() bool {
		leader = primary("")
		return leader != ""
	})

	budget := dp.Params{Epsilon: 1, Delta: 1e-5}
	rl, err := accountant.OpenRemoteLedger(c.members(), "auto", budget, groupRemote())
	if err != nil {
		t.Fatalf("OpenRemoteLedger: %v", err)
	}
	cost := dp.Params{Epsilon: 0.1, Delta: 1e-6}
	for i := 0; i < 2; i++ {
		if err := rl.Spend(fmt.Sprintf("pre-%d", i), cost); err != nil {
			t.Fatalf("spend before failover: %v", err)
		}
	}

	c.partition(leader)
	old := leader
	waitFor(t, 15*time.Second, "automatic failover", func() bool {
		leader = primary(old)
		return leader != ""
	})
	for i := 0; i < 2; i++ {
		if err := rl.Spend(fmt.Sprintf("post-%d", i), cost); err != nil {
			t.Fatalf("spend after failover: %v", err)
		}
	}
	c.heal()
	ops, err := c.group(leader).Ops("auto")
	if err != nil {
		t.Fatalf("Ops: %v", err)
	}
	if len(ops) != 4 {
		t.Fatalf("trail has %d ops, want 4", len(ops))
	}
}

// TestGroupReadyz drives the readiness probe over HTTP: a primary with
// a committed log and a follower with a live leader answer 200; a
// member cut off from the group decays to 503.
func TestGroupReadyz(t *testing.T) {
	c := newCluster(t, 3, -1)
	if err := c.group("n1").Promote(); err != nil {
		t.Fatalf("promoting n1: %v", err)
	}
	readyz := func(id string) int {
		resp, err := http.Get(c.peers[id] + "/readyz")
		if err != nil {
			t.Fatalf("GET readyz %s: %v", id, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	waitFor(t, 5*time.Second, "all members ready", func() bool {
		for _, id := range c.ids {
			if readyz(id) != http.StatusOK {
				return false
			}
		}
		return true
	})
	// Cut n3 off: with no leader contact its readiness must decay (the
	// staleness window is max(3*heartbeat, 1s)).
	c.partition("n3")
	waitFor(t, 10*time.Second, "partitioned follower turning unready", func() bool {
		return readyz("n3") == http.StatusServiceUnavailable
	})
	c.heal()
	waitFor(t, 10*time.Second, "healed follower turning ready", func() bool {
		return readyz("n3") == http.StatusOK
	})
}
