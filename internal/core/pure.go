package core

import (
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/rng"
)

// ReleaseCellsPureInto releases a level's cell histogram under a pure-ε
// mechanism (Laplace or geometric), the δ = 0 counterpart of
// ReleaseCellsWorkersInto. Under cell adjacency removing one group Gi
// changes only coordinate i of the histogram, by |Gi| records, so the
// histogram's L1 sensitivity equals the count query's Δℓ = max cell
// size and per-coordinate noise at scale Δℓ/ε gives εg-group DP for the
// whole histogram with δ = 0.
//
// The noise pass is one serial draw per cell in index order — there is
// no worker knob because the result is already independent of
// parallelism by construction, and pure-ε strategies trade Phase-2
// throughput for the stronger guarantee. Sigma reports the mechanism's
// standard deviation (b√2 for Laplace(b), the geometric Scale
// otherwise) so downstream variance weighting keeps working.
func ReleaseCellsPureInto(dst *CellRelease, t *hierarchy.Tree, level int, p dp.Params, mech NoiseMechanism, src *rng.Source) error {
	if mech != MechLaplace && mech != MechGeometric {
		return fmt.Errorf("%w: %d (want laplace or geometric)", ErrBadMechanism, int(mech))
	}
	if t == nil {
		return ErrNilTree
	}
	if src == nil {
		return dp.ErrNilSource
	}
	if err := p.Validate(); err != nil {
		return err
	}
	sens, err := Sensitivity(t, level, ModelCells)
	if err != nil {
		return err
	}
	counts, err := t.LevelCellCountsView(level)
	if err != nil {
		return err
	}
	k, err := t.NumSideGroups(level)
	if err != nil {
		return err
	}
	buf := dst.Counts
	if cap(buf) < len(counts) {
		buf = make([]float64, len(counts))
	} else {
		buf = buf[:len(counts)]
	}
	var sigma float64
	if sens == 0 {
		for i, c := range counts {
			buf[i] = float64(c)
		}
	} else {
		switch mech {
		case MechLaplace:
			m, err := dp.NewLaplace(p.Epsilon, float64(sens), src)
			if err != nil {
				return err
			}
			sigma = m.Scale() * math.Sqrt2 // stddev of Laplace(b)
			for i, c := range counts {
				buf[i] = m.Perturb(float64(c))
			}
		case MechGeometric:
			m, err := dp.NewGeometric(p.Epsilon, float64(sens), src)
			if err != nil {
				return err
			}
			sigma = m.Scale()
			for i, c := range counts {
				buf[i] = float64(m.PerturbInt(c))
			}
		}
	}
	*dst = CellRelease{
		Level: level, Model: ModelCells,
		ModelName: ModelCells.String(), CalibName: "pure",
		Params: p, Epsilon: p.Epsilon, Delta: 0,
		Sensitivity: sens, Sigma: sigma,
		Counts: buf, SideGroups: k,
		MechName: mech.String(),
	}
	return nil
}
