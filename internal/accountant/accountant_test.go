package accountant

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dp"
)

func TestNewLedgerValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewLedger(dp.Params{Epsilon: 0}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewLedger(dp.Params{Epsilon: 1, Delta: 1e-5}); err != nil {
		t.Errorf("valid budget rejected: %v", err)
	}
}

func TestLedgerSpendAndRemaining(t *testing.T) {
	t.Parallel()
	l, err := NewLedger(dp.Params{Epsilon: 1, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("phase1", dp.Params{Epsilon: 0.4, Delta: 4e-6}); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("phase2", dp.Params{Epsilon: 0.6, Delta: 6e-6}); err != nil {
		t.Fatal(err)
	}
	spent := l.Spent()
	if math.Abs(spent.Epsilon-1) > 1e-12 || math.Abs(spent.Delta-1e-5) > 1e-18 {
		t.Errorf("Spent = %v", spent)
	}
	rem := l.Remaining()
	if rem.Epsilon > 1e-9 || rem.Delta > 1e-15 {
		t.Errorf("Remaining = %v, want about zero", rem)
	}
}

func TestLedgerRejectsOverspend(t *testing.T) {
	t.Parallel()
	l, err := NewLedger(dp.Params{Epsilon: 1, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("ok", dp.Params{Epsilon: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("too much", dp.Params{Epsilon: 0.2}); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("overspend error = %v", err)
	}
	// A failed spend must not consume anything.
	if got := l.Spent().Epsilon; math.Abs(got-0.9) > 1e-12 {
		t.Errorf("failed spend mutated ledger: %v", got)
	}
	// Delta overspend is also rejected.
	if err := l.Spend("delta heavy", dp.Params{Epsilon: 0.05, Delta: 1e-5}); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("delta overspend error = %v", err)
	}
}

func TestLedgerRejectsInvalidCost(t *testing.T) {
	t.Parallel()
	l, err := NewLedger(dp.Params{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("bad", dp.Params{Epsilon: -1}); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestLedgerUniformSpendsExactlyFit(t *testing.T) {
	t.Parallel()
	// 9 spends of budget/9 must all fit despite floating-point division.
	l, err := NewLedger(dp.Params{Epsilon: 0.999, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	shares, err := UniformSplitter{}.Split(dp.Params{Epsilon: 0.999, Delta: 1e-5}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shares {
		if err := l.Spend("level", s); err != nil {
			t.Fatalf("share %d rejected: %v", i, err)
		}
	}
}

func TestLedgerConcurrentSpend(t *testing.T) {
	t.Parallel()
	l, err := NewLedger(dp.Params{Epsilon: 100})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers = 16
	const perWorker = 50
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := l.Spend("w", dp.Params{Epsilon: 0.1}); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	want := workers * perWorker * 0.1
	if got := l.Spent().Epsilon; math.Abs(got-want) > 1e-6 {
		t.Errorf("Spent = %v, want %v", got, want)
	}
	if got := len(l.Ops()); got != workers*perWorker {
		t.Errorf("ops = %d, want %d", got, workers*perWorker)
	}
}

func TestOpsAreCopies(t *testing.T) {
	t.Parallel()
	l, err := NewLedger(dp.Params{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend("a", dp.Params{Epsilon: 0.5}); err != nil {
		t.Fatal(err)
	}
	ops := l.Ops()
	ops[0].Label = "mutated"
	if l.Ops()[0].Label != "a" {
		t.Error("Ops returned aliased storage")
	}
}

func TestAuditReport(t *testing.T) {
	t.Parallel()
	l, err := NewLedger(dp.Params{Epsilon: 1, Delta: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Spend("phase1/split", dp.Params{Epsilon: 0.25})
	_ = l.Spend("phase2/noise", dp.Params{Epsilon: 0.5, Delta: 1e-5})
	report := l.AuditReport()
	for _, want := range []string{"phase1/split", "phase2/noise", "2 ops"} {
		if !strings.Contains(report, want) {
			t.Errorf("report %q missing %q", report, want)
		}
	}
}

func TestComposeBasic(t *testing.T) {
	t.Parallel()
	got, err := ComposeBasic([]dp.Params{
		{Epsilon: 0.1, Delta: 1e-6},
		{Epsilon: 0.2, Delta: 2e-6},
		{Epsilon: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Epsilon-0.6) > 1e-12 || math.Abs(got.Delta-3e-6) > 1e-18 {
		t.Errorf("ComposeBasic = %v", got)
	}
	if _, err := ComposeBasic(nil); !errors.Is(err, ErrNoOps) {
		t.Errorf("empty: %v", err)
	}
	if _, err := ComposeBasic([]dp.Params{{Epsilon: -1}}); err == nil {
		t.Error("invalid cost accepted")
	}
}

func TestComposeParallel(t *testing.T) {
	t.Parallel()
	got, err := ComposeParallel([]dp.Params{
		{Epsilon: 0.1, Delta: 5e-6},
		{Epsilon: 0.9, Delta: 1e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Epsilon != 0.9 || got.Delta != 5e-6 {
		t.Errorf("ComposeParallel = %v", got)
	}
	if _, err := ComposeParallel(nil); !errors.Is(err, ErrNoOps) {
		t.Errorf("empty: %v", err)
	}
}

func TestComposeAdvancedFormula(t *testing.T) {
	t.Parallel()
	cost := dp.Params{Epsilon: 0.1, Delta: 1e-7}
	const k = 10
	const slack = 1e-6
	got, err := ComposeAdvanced(cost, k, slack)
	if err != nil {
		t.Fatal(err)
	}
	wantEps := math.Sqrt(2*10*math.Log(1/slack))*0.1 + 10*0.1*(math.Exp(0.1)-1)
	if math.Abs(got.Epsilon-wantEps) > 1e-9 {
		t.Errorf("eps = %v, want %v", got.Epsilon, wantEps)
	}
	if math.Abs(got.Delta-(10*1e-7+slack)) > 1e-15 {
		t.Errorf("delta = %v", got.Delta)
	}
}

func TestComposeAdvancedBeatsBasicForManyQueries(t *testing.T) {
	t.Parallel()
	cost := dp.Params{Epsilon: 0.01, Delta: 0}
	const k = 10000
	adv, err := ComposeAdvanced(cost, k, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	basic := float64(k) * cost.Epsilon
	if adv.Epsilon >= basic {
		t.Errorf("advanced %v not better than basic %v at k=%d", adv.Epsilon, basic, k)
	}
}

func TestComposeAdvancedValidation(t *testing.T) {
	t.Parallel()
	if _, err := ComposeAdvanced(dp.Params{Epsilon: 1}, 0, 1e-6); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ComposeAdvanced(dp.Params{Epsilon: 1}, 5, 0); err == nil {
		t.Error("slack=0 accepted")
	}
	if _, err := ComposeAdvanced(dp.Params{Epsilon: -1}, 5, 1e-6); err == nil {
		t.Error("invalid cost accepted")
	}
}

func TestAdvancedPerQueryEpsilonInverts(t *testing.T) {
	t.Parallel()
	const total = 1.0
	const k = 9
	const slack = 1e-6
	perQ, err := AdvancedPerQueryEpsilon(total, k, slack)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := ComposeAdvanced(dp.Params{Epsilon: perQ, Delta: 0}, k, slack)
	if err != nil {
		t.Fatal(err)
	}
	if composed.Epsilon > total*(1+1e-6) {
		t.Errorf("per-query ε=%v composes to %v > %v", perQ, composed.Epsilon, total)
	}
	if composed.Epsilon < total*0.999 {
		t.Errorf("per-query ε=%v is loose: composes to %v", perQ, composed.Epsilon)
	}
}

func TestAdvancedPerQueryEpsilonValidation(t *testing.T) {
	t.Parallel()
	if _, err := AdvancedPerQueryEpsilon(0, 5, 1e-6); err == nil {
		t.Error("total=0 accepted")
	}
	if _, err := AdvancedPerQueryEpsilon(1, -1, 1e-6); err == nil {
		t.Error("k<0 accepted")
	}
	if _, err := AdvancedPerQueryEpsilon(1, 5, 2); err == nil {
		t.Error("slack=2 accepted")
	}
}

func TestUniformSplitter(t *testing.T) {
	t.Parallel()
	shares, err := UniformSplitter{}.Split(dp.Params{Epsilon: 0.9, Delta: 9e-6}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 9 {
		t.Fatalf("got %d shares", len(shares))
	}
	for _, s := range shares {
		if math.Abs(s.Epsilon-0.1) > 1e-12 || math.Abs(s.Delta-1e-6) > 1e-18 {
			t.Errorf("share = %v", s)
		}
	}
	if _, err := (UniformSplitter{}).Split(dp.Params{Epsilon: 1}, 0); !errors.Is(err, ErrBadSplit) {
		t.Errorf("n=0: %v", err)
	}
}

func TestGeometricSplitter(t *testing.T) {
	t.Parallel()
	shares, err := GeometricSplitter{Ratio: 2}.Split(dp.Params{Epsilon: 0.7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// weights 1,2,4 -> shares 0.1, 0.2, 0.4
	want := []float64{0.1, 0.2, 0.4}
	for i := range want {
		if math.Abs(shares[i].Epsilon-want[i]) > 1e-12 {
			t.Errorf("share %d = %v, want %v", i, shares[i].Epsilon, want[i])
		}
	}
	for _, ratio := range []float64{0, 1, -2, math.NaN()} {
		sp := GeometricSplitter{Ratio: ratio}
		if _, err := sp.Split(dp.Params{Epsilon: 1}, 3); !errors.Is(err, ErrBadSplit) {
			t.Errorf("ratio=%v: %v", ratio, err)
		}
	}
}

func TestSplitWeightedValidation(t *testing.T) {
	t.Parallel()
	if _, err := SplitWeighted(dp.Params{Epsilon: 1}, nil); !errors.Is(err, ErrBadSplit) {
		t.Errorf("no weights: %v", err)
	}
	if _, err := SplitWeighted(dp.Params{Epsilon: 1}, []float64{1, -1}); !errors.Is(err, ErrBadSplit) {
		t.Errorf("negative weight: %v", err)
	}
}

// TestQuickSplittersConserveBudget: any splitter output composes back to
// (at most) the input budget.
func TestQuickSplittersConserveBudget(t *testing.T) {
	t.Parallel()
	f := func(epsRaw, deltaRaw uint32, nRaw uint8, ratioRaw uint8) bool {
		total := dp.Params{
			Epsilon: 0.001 + float64(epsRaw%10000)/1000,
			Delta:   float64(deltaRaw%1000) * 1e-9,
		}
		n := int(nRaw%12) + 1
		ratio := 0.25 + float64(ratioRaw%8)*0.5
		if ratio == 1 {
			ratio = 1.5
		}
		for _, sp := range []Splitter{UniformSplitter{}, GeometricSplitter{Ratio: ratio}} {
			shares, err := sp.Split(total, n)
			if err != nil {
				return false
			}
			sum, err := ComposeBasic(shares)
			if err != nil {
				return false
			}
			if sum.Epsilon > total.Epsilon*(1+1e-9) || sum.Delta > total.Delta*(1+1e-9)+1e-18 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortOpsByCost(t *testing.T) {
	t.Parallel()
	ops := []Op{
		{Seq: 1, Label: "small", Cost: dp.Params{Epsilon: 0.1}},
		{Seq: 2, Label: "big", Cost: dp.Params{Epsilon: 0.9}},
		{Seq: 3, Label: "mid", Cost: dp.Params{Epsilon: 0.5}},
	}
	sorted := SortOpsByCost(ops)
	if sorted[0].Label != "big" || sorted[2].Label != "small" {
		t.Errorf("sorted = %v", sorted)
	}
	if ops[0].Label != "small" {
		t.Error("SortOpsByCost mutated its input")
	}
}
