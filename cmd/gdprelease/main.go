// Command gdprelease runs the full two-phase group-DP disclosure pipeline
// on a dataset and emits the multi-level release artifact as JSON.
//
// Usage:
//
//	gdprelease -preset dblp-tiny -eps 0.9 -rounds 6 -out release.json
//	gdprelease -in dblp.bpg -format binary -eps 0.5 -cells -audit
//	gdprelease -in edges.tsv -eps 0.9 -mode composed-basic -include-true
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/release"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gdprelease:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gdprelease", flag.ContinueOnError)
	var (
		preset      = fs.String("preset", "", "generate input from a preset instead of reading a file")
		in          = fs.String("in", "", "input graph path (tsv or binary)")
		format      = fs.String("format", "tsv", "input format when -in is set: tsv or binary")
		out         = fs.String("out", "", "output path; empty writes to stdout")
		eps         = fs.Float64("eps", 0.9, "group privacy budget εg per level")
		delta       = fs.Float64("delta", 1e-5, "Gaussian δ")
		rounds      = fs.Int("rounds", 9, "specialization rounds (hierarchy depth)")
		levels      = fs.String("levels", "", "comma-separated levels to release; default 0..rounds-2")
		mode        = fs.String("mode", "per-level", "budget mode: per-level, composed-basic, composed-advanced, composed-rdp")
		model       = fs.String("model", "cells", "adjacency model: cells, node-groups, individual")
		calib       = fs.String("calib", "classical", "gaussian calibration: classical or analytic")
		mech        = fs.String("mech", "gaussian", "noise mechanism: gaussian, laplace, geometric")
		phase1      = fs.Float64("phase1-eps", 0.1, "per-cut exponential-mechanism budget; 0 = non-private grouping")
		seed        = fs.Uint64("seed", 0, "random seed; 0 draws one from OS entropy")
		cells       = fs.Bool("cells", false, "also release per-level cell histograms")
		includeTrue = fs.Bool("include-true", false, "include exact counts in the JSON (curator-side output)")
		audit       = fs.Bool("audit", false, "print the privacy audit trail to stderr")
		workers     = fs.Int("workers", runtime.GOMAXPROCS(0), "phase-1 build parallelism (the release is identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := loadGraph(*preset, *in, *format, *seed)
	if err != nil {
		return err
	}

	effSeed := *seed
	if effSeed == 0 {
		if effSeed, err = repro.NewRandomSeed(); err != nil {
			return err
		}
	}

	opts := []repro.Option{
		repro.WithRounds(*rounds),
		repro.WithSeed(effSeed),
		repro.WithPhase1Epsilon(*phase1),
		repro.WithCellHistograms(*cells),
		repro.WithWorkers(*workers),
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	opts = append(opts, repro.WithMode(m))
	gm, err := parseModel(*model)
	if err != nil {
		return err
	}
	opts = append(opts, repro.WithModel(gm))
	cal, err := parseCalib(*calib)
	if err != nil {
		return err
	}
	opts = append(opts, repro.WithCalibration(cal))
	nm, err := parseMech(*mech)
	if err != nil {
		return err
	}
	opts = append(opts, repro.WithMechanism(nm))
	if *levels != "" {
		lv, err := parseLevels(*levels)
		if err != nil {
			return err
		}
		opts = append(opts, repro.WithLevels(lv))
	}

	pipe, err := repro.NewPipeline(repro.Params{Epsilon: *eps, Delta: *delta}, opts...)
	if err != nil {
		return err
	}
	rel, err := pipe.Run(g)
	if err != nil {
		return err
	}

	if *audit {
		fmt.Fprintf(os.Stderr, "dataset: %s\n", rel.Dataset)
		fmt.Fprintf(os.Stderr, "phase-1 ε: %.4f  sequential ε: %.4f  parallel ε: %.4f\n",
			rel.Phase1Epsilon, rel.SequentialCostEpsilon, rel.ParallelCostEpsilon)
		for _, op := range rel.Audit {
			fmt.Fprintf(os.Stderr, "  %3d. %-24s %s\n", op.Seq, op.Label, op.Cost)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	return rel.WriteJSON(w, *includeTrue)
}

func loadGraph(preset, in, format string, seed uint64) (*repro.Graph, error) {
	switch {
	case preset != "" && in != "":
		return nil, fmt.Errorf("set either -preset or -in, not both")
	case preset != "":
		return repro.GenerateDataset(preset, seed+1)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if format == "binary" {
			return repro.DecodeBinary(f)
		}
		return repro.LoadTSV(f)
	default:
		return nil, fmt.Errorf("one of -preset or -in is required")
	}
}

func parseMode(s string) (repro.Mode, error) {
	switch s {
	case "per-level":
		return release.ModePerLevel, nil
	case "composed-basic":
		return release.ModeComposedBasic, nil
	case "composed-advanced":
		return release.ModeComposedAdvanced, nil
	case "composed-rdp":
		return release.ModeComposedRDP, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func parseModel(s string) (repro.GroupModel, error) {
	switch s {
	case "cells":
		return core.ModelCells, nil
	case "node-groups":
		return core.ModelNodeGroups, nil
	case "individual":
		return core.ModelIndividual, nil
	default:
		return 0, fmt.Errorf("unknown model %q", s)
	}
}

func parseCalib(s string) (repro.Calibration, error) {
	switch s {
	case "classical":
		return core.CalibrationClassical, nil
	case "analytic":
		return core.CalibrationAnalytic, nil
	default:
		return 0, fmt.Errorf("unknown calibration %q", s)
	}
}

func parseMech(s string) (repro.NoiseMechanism, error) {
	switch s {
	case "gaussian":
		return core.MechGaussian, nil
	case "laplace":
		return core.MechLaplace, nil
	case "geometric":
		return core.MechGeometric, nil
	default:
		return 0, fmt.Errorf("unknown mechanism %q", s)
	}
}

func parseLevels(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		var lvl int
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &lvl); err != nil {
			return nil, fmt.Errorf("bad level %q: %w", p, err)
		}
		out = append(out, lvl)
	}
	return out, nil
}
