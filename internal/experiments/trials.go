package experiments

import (
	"sync"
	"sync/atomic"

	"repro/internal/hierarchy"
	"repro/internal/rng"
)

// Parallel trial fan-out.
//
// Every experiment's trials are statistically independent — each owns a
// Split RNG stream pre-derived in serial order — so they can run on any
// number of goroutines as long as (a) no trial touches another trial's
// state and (b) the reduction over trial results happens in trial order.
// runTrials provides (a) by confining each fn call to trial-indexed
// slots, and the callers provide (b); together they make every
// experiment's output bit-identical for any Options.Workers, which the
// golden tests in experiments_test.go pin.

// runTrials runs fn(worker, trial) for every trial in [0, trials) across
// min(workers, trials) goroutines, or inline when that is fewer than
// two. worker identifies the executing lane in [0, numTrialWorkers): fn
// may index per-worker state (a hierarchy.Builder, a reusable release
// buffer) with it, because a lane runs at most one fn at a time. fn must
// write results only into trial-indexed slots; callers reduce those in
// trial order afterwards.
//
// On failure the error returned is always the failing trial with the
// lowest index, so the reported failure is deterministic; the inline
// path stops there, while fanned-out lanes finish their in-flight
// trials. Callers discard all results on error, so the difference is
// unobservable.
func runTrials(workers, trials int, fn func(worker, trial int) error) error {
	nw := numTrialWorkers(workers, trials)
	if nw < 2 {
		for trial := 0; trial < trials; trial++ {
			if err := fn(0, trial); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, trials)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				trial := int(next.Add(1)) - 1
				if trial >= trials {
					return
				}
				errs[trial] = fn(worker, trial)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// numTrialWorkers returns how many lanes runTrials will use.
func numTrialWorkers(workers, trials int) int {
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// trialBuilders allocates one retained hierarchy.Builder per lane; the
// caller defers close.
func trialBuilders(lanes int) []*hierarchy.Builder {
	out := make([]*hierarchy.Builder, lanes)
	for i := range out {
		out[i] = hierarchy.NewBuilder()
	}
	return out
}

func closeBuilders(bs []*hierarchy.Builder) {
	for _, b := range bs {
		b.Close()
	}
}

// buildWorkersFor returns the intra-trial parallelism each trial should
// use — for the hierarchy build and for the εg × level sweep: the worker
// budget divided across the trial lanes, rounded up — few trials on a
// many-core box still parallelize inside each trial, many trials run
// (near-)single-threaded, and a non-dividing budget mildly
// oversubscribes rather than stranding the remainder. A tree is
// bit-identical for any build worker count, so the split never changes
// results. A serial trial loop keeps the full budget for the build's own
// pool.
func buildWorkersFor(workers, trials int) int {
	lanes := numTrialWorkers(workers, trials)
	if lanes < 2 {
		return workers
	}
	return (workers + lanes - 1) / lanes
}

// splitPerTrial derives one child stream per trial from src, in trial
// order — exactly the streams a serial loop would consume — so trials
// can then run in any order and on any lane.
func splitPerTrial(src *rng.Source, trials int) []*rng.Source {
	out := make([]*rng.Source, trials)
	for trial := range out {
		out[trial] = src.Split(uint64(trial))
	}
	return out
}
