package accountant

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dp"
)

func TestNewRDPAccountantValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewRDPAccountant([]float64{}); err == nil {
		t.Error("empty orders accepted")
	}
	if _, err := NewRDPAccountant([]float64{1}); err == nil {
		t.Error("order 1 accepted")
	}
	if _, err := NewRDPAccountant([]float64{0.5}); err == nil {
		t.Error("order < 1 accepted")
	}
	if _, err := NewRDPAccountant([]float64{math.NaN()}); err == nil {
		t.Error("NaN order accepted")
	}
	acc, err := NewRDPAccountant(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc.Orders()) != len(DefaultRDPOrders()) {
		t.Error("nil orders did not use defaults")
	}
}

func TestRDPGaussianSingleRelease(t *testing.T) {
	t.Parallel()
	// One Gaussian with sigma calibrated classically for (eps, delta)
	// must convert back to at most ~eps under RDP (RDP conversion is a
	// different bound, so allow slack but require the same ballpark).
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	sigma, err := dp.ClassicalGaussianSigma(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewRDPAccountant(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.AddGaussian(sigma, 1); err != nil {
		t.Fatal(err)
	}
	got, err := acc.ToApproxDP(p.Delta)
	if err != nil {
		t.Fatal(err)
	}
	// The generic RDP-to-DP conversion is slightly loose for a single
	// release; it must still land within ~10% of the classical claim.
	if got.Epsilon > p.Epsilon*1.1 {
		t.Errorf("RDP conversion %v far exceeds classical claim %v", got.Epsilon, p.Epsilon)
	}
	if got.Epsilon < p.Epsilon/10 {
		t.Errorf("RDP conversion %v implausibly small", got.Epsilon)
	}
}

func TestRDPAdditivity(t *testing.T) {
	t.Parallel()
	a1, err := NewRDPAccountant(nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewRDPAccountant(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := a1.AddGaussian(10, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a2.AddGaussian(5, 1); err != nil { // 4 at sigma 10 == 1 at sigma 5 in RDP
		t.Fatal(err)
	}
	e1 := a1.Epsilons()
	e2 := a2.Epsilons()
	for i := range e1 {
		if math.Abs(e1[i]-e2[i]) > 1e-12 {
			t.Fatalf("order %v: 4×σ10 RDP %v != 1×σ5 RDP %v", a1.Orders()[i], e1[i], e2[i])
		}
	}
	if a1.Count() != 4 || a2.Count() != 1 {
		t.Error("counts wrong")
	}
}

func TestRDPBeatsAdvancedCompositionForManyGaussians(t *testing.T) {
	t.Parallel()
	// k Gaussian queries, each individually (eps0, delta0)-DP. Compare
	// total ε at final delta via RDP vs advanced composition.
	const k = 200
	eps0 := 0.05
	delta0 := 1e-8
	sigma, err := dp.ClassicalGaussianSigma(dp.Params{Epsilon: eps0, Delta: delta0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewRDPAccountant(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := acc.AddGaussian(sigma, 1); err != nil {
			t.Fatal(err)
		}
	}
	const finalDelta = 1e-5
	rdp, err := acc.ToApproxDP(finalDelta)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := ComposeAdvanced(dp.Params{Epsilon: eps0, Delta: delta0}, k, finalDelta-float64(k)*delta0)
	if err != nil {
		t.Fatal(err)
	}
	if rdp.Epsilon >= adv.Epsilon {
		t.Errorf("RDP %v not tighter than advanced composition %v at k=%d", rdp.Epsilon, adv.Epsilon, k)
	}
}

func TestRDPAddPure(t *testing.T) {
	t.Parallel()
	acc, err := NewRDPAccountant(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.AddPure(0.3); err != nil {
		t.Fatal(err)
	}
	got, err := acc.ToApproxDP(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// A single pure-DP mechanism converts to at most its own epsilon
	// plus the conversion overhead; with the max-divergence bound the
	// result can't exceed 0.3 + ln(1e6)/(64-1) ≈ 0.52.
	if got.Epsilon > 0.6 {
		t.Errorf("pure conversion = %v", got.Epsilon)
	}
	if err := acc.AddPure(0); err == nil {
		t.Error("zero epsilon accepted")
	}
}

func TestRDPValidationErrors(t *testing.T) {
	t.Parallel()
	acc, err := NewRDPAccountant(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.AddGaussian(0, 1); err == nil {
		t.Error("sigma=0 accepted")
	}
	if err := acc.AddGaussian(1, math.Inf(1)); err == nil {
		t.Error("inf sensitivity accepted")
	}
	if _, err := acc.ToApproxDP(0); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := acc.ToApproxDP(1); err == nil {
		t.Error("delta=1 accepted")
	}
}

func TestRDPConcurrentAdds(t *testing.T) {
	t.Parallel()
	acc, err := NewRDPAccountant(nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := acc.AddGaussian(10, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if acc.Count() != workers*perWorker {
		t.Errorf("count = %d", acc.Count())
	}
	// RDP at order 2 should be exactly n * 2/(2*100).
	want := float64(workers*perWorker) * 2 / 200
	orders := acc.Orders()
	eps := acc.Epsilons()
	for i, o := range orders {
		if o == 2 {
			if math.Abs(eps[i]-want) > 1e-9 {
				t.Errorf("order-2 RDP = %v, want %v", eps[i], want)
			}
		}
	}
}

func TestGaussianSigmaForBudget(t *testing.T) {
	t.Parallel()
	const epsTotal = 1.0
	const delta = 1e-5
	const k = 50
	sigma, err := GaussianSigmaForBudget(epsTotal, delta, k)
	if err != nil {
		t.Fatal(err)
	}
	// The returned sigma must satisfy the budget...
	acc, err := NewRDPAccountant(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := acc.AddGaussian(sigma, 1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := acc.ToApproxDP(delta)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epsilon > epsTotal*1.001 {
		t.Errorf("sigma %v composes to %v > %v", sigma, got.Epsilon, epsTotal)
	}
	// ...and be nearly minimal.
	acc2, err := NewRDPAccountant(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := acc2.AddGaussian(sigma*0.95, 1); err != nil {
			t.Fatal(err)
		}
	}
	tighter, err := acc2.ToApproxDP(delta)
	if err != nil {
		t.Fatal(err)
	}
	if tighter.Epsilon <= epsTotal {
		t.Errorf("sigma not minimal: 0.95σ still satisfies the budget (%v)", tighter.Epsilon)
	}
	if _, err := GaussianSigmaForBudget(0, delta, k); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := GaussianSigmaForBudget(1, delta, 0); err == nil {
		t.Error("k=0 accepted")
	}
}
