package core

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/partition"
	"repro/internal/rng"
)

// testTree builds a deterministic 3-level hierarchy over a 16x16 graph.
func testTree(t testing.TB) *hierarchy.Tree {
	t.Helper()
	r := rng.New(55)
	b := bipartite.NewBuilder(0)
	b.SetNumLeft(16)
	b.SetNumRight(16)
	for i := 0; i < 120; i++ {
		b.AddEdge(int32(r.Intn(16)), int32(r.Intn(16)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hierarchy.Build(g, hierarchy.Options{Rounds: 3, Bisector: partition.BalancedBisector{}})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestGroupModelStrings(t *testing.T) {
	t.Parallel()
	if ModelCells.String() != "cells" || ModelNodeGroups.String() != "node-groups" || ModelIndividual.String() != "individual" {
		t.Error("unexpected model names")
	}
	if !strings.Contains(GroupModel(9).String(), "9") {
		t.Error("invalid model should render its number")
	}
	if GroupModel(0).Valid() || !ModelCells.Valid() {
		t.Error("Valid misclassifies models")
	}
}

func TestCalibrationStrings(t *testing.T) {
	t.Parallel()
	if CalibrationClassical.String() != "classical" || CalibrationAnalytic.String() != "analytic" {
		t.Error("unexpected calibration names")
	}
	if Calibration(0).Valid() || !CalibrationAnalytic.Valid() {
		t.Error("Valid misclassifies calibrations")
	}
}

func TestUniverseCells(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	u, err := Universe(tree, 3, ModelCells)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumGroups != 1 || u.MaxGroupRecords != tree.Graph().NumEdges() {
		t.Errorf("root universe = %+v", u)
	}
	u1, err := Universe(tree, 1, ModelCells)
	if err != nil {
		t.Fatal(err)
	}
	if u1.NumGroups != 16 {
		t.Errorf("level 1 cells = %d, want 16", u1.NumGroups)
	}
	if u1.MaxGroupRecords > u.MaxGroupRecords {
		t.Error("finer level has larger max group")
	}
}

func TestUniverseNodeGroups(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	u, err := Universe(tree, 1, ModelNodeGroups)
	if err != nil {
		t.Fatal(err)
	}
	// Level 1 depth 2 → 4 ranges per side → 8 node groups.
	if u.NumGroups != 8 {
		t.Errorf("node groups = %d, want 8", u.NumGroups)
	}
	if u.MaxGroupRecords <= 0 {
		t.Errorf("max group records = %d", u.MaxGroupRecords)
	}
}

func TestUniverseIndividual(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	u, err := Universe(tree, 0, ModelIndividual)
	if err != nil {
		t.Fatal(err)
	}
	if u.MaxGroupRecords != 1 {
		t.Errorf("individual sensitivity = %d, want 1", u.MaxGroupRecords)
	}
	if int64(u.NumGroups) != tree.Graph().NumEdges() {
		t.Errorf("individual groups = %d, want %d", u.NumGroups, tree.Graph().NumEdges())
	}
}

func TestUniverseErrors(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	if _, err := Universe(nil, 0, ModelCells); !errors.Is(err, ErrNilTree) {
		t.Errorf("nil tree: %v", err)
	}
	if _, err := Universe(tree, 0, GroupModel(42)); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad model: %v", err)
	}
	if _, err := Universe(tree, 99, ModelCells); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := Universe(tree, 99, ModelIndividual); err == nil {
		t.Error("bad level accepted for individual model")
	}
}

func TestSensitivityOrdering(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	// Node-group sensitivity dominates cell sensitivity at the same level
	// (a side group's incident edges include every cell in its row).
	for level := 0; level <= 3; level++ {
		cell, err := Sensitivity(tree, level, ModelCells)
		if err != nil {
			t.Fatal(err)
		}
		node, err := Sensitivity(tree, level, ModelNodeGroups)
		if err != nil {
			t.Fatal(err)
		}
		if cell > node {
			t.Errorf("level %d: cell sensitivity %d > node-group %d", level, cell, node)
		}
		ind, err := Sensitivity(tree, level, ModelIndividual)
		if err != nil {
			t.Fatal(err)
		}
		if ind != 1 {
			t.Errorf("individual sensitivity = %d", ind)
		}
	}
}

func TestSigma(t *testing.T) {
	t.Parallel()
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	sigmaC, err := Sigma(p, 100, CalibrationClassical)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dp.ClassicalGaussianSigma(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sigmaC != want {
		t.Errorf("classical sigma = %v, want %v", sigmaC, want)
	}
	sigmaA, err := Sigma(p, 100, CalibrationAnalytic)
	if err != nil {
		t.Fatal(err)
	}
	if sigmaA >= sigmaC {
		t.Errorf("analytic sigma %v not tighter than classical %v", sigmaA, sigmaC)
	}
	zero, err := Sigma(p, 0, CalibrationClassical)
	if err != nil || zero != 0 {
		t.Errorf("Sigma(0 sens) = %v, %v", zero, err)
	}
	if _, err := Sigma(p, -1, CalibrationClassical); err == nil {
		t.Error("negative sensitivity accepted")
	}
	if _, err := Sigma(p, 1, Calibration(7)); !errors.Is(err, ErrBadCalib) {
		t.Errorf("bad calibration: %v", err)
	}
}

func TestReleaseCountBasics(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9, Delta: 1e-5}
	rel, err := ReleaseCount(tree, 2, p, ModelCells, CalibrationClassical, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Level != 2 || rel.TrueCount != tree.Graph().NumEdges() {
		t.Errorf("release = %+v", rel)
	}
	if rel.Sigma <= 0 || rel.Sensitivity <= 0 {
		t.Errorf("sigma/sensitivity = %v/%d", rel.Sigma, rel.Sensitivity)
	}
	wantRER := math.Abs(rel.NoisyCount-float64(rel.TrueCount)) / float64(rel.TrueCount)
	if math.Abs(rel.RER-wantRER) > 1e-12 {
		t.Errorf("RER = %v, want %v", rel.RER, wantRER)
	}
}

func TestReleaseCountErrors(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9, Delta: 1e-5}
	if _, err := ReleaseCount(nil, 0, p, ModelCells, CalibrationClassical, rng.New(1)); !errors.Is(err, ErrNilTree) {
		t.Errorf("nil tree: %v", err)
	}
	if _, err := ReleaseCount(tree, 0, p, ModelCells, CalibrationClassical, nil); !errors.Is(err, dp.ErrNilSource) {
		t.Errorf("nil source: %v", err)
	}
	if _, err := ReleaseCount(tree, 0, dp.Params{}, ModelCells, CalibrationClassical, rng.New(1)); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := ReleaseCount(tree, 9, p, ModelCells, CalibrationClassical, rng.New(1)); err == nil {
		t.Error("invalid level accepted")
	}
	// Classical calibration rejects εg >= 1.
	if _, err := ReleaseCount(tree, 0, dp.Params{Epsilon: 2, Delta: 1e-5}, ModelCells, CalibrationClassical, rng.New(1)); err == nil {
		t.Error("classical calibration accepted eps=2")
	}
}

func TestReleaseNoiseGrowsWithLevel(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	var prev float64 = -1
	for level := 0; level <= 3; level++ {
		rel, err := ReleaseCount(tree, level, p, ModelCells, CalibrationClassical, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if rel.Sigma < prev {
			t.Errorf("sigma decreased from %v to %v at level %d", prev, rel.Sigma, level)
		}
		prev = rel.Sigma
	}
}

func TestExpectedRERMatchesEmpirical(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.5, Delta: 1e-5}
	want, err := ExpectedRER(tree, 2, p, ModelCells, CalibrationClassical)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	const trials = 20000
	var sum float64
	for i := 0; i < trials; i++ {
		rel, err := ReleaseCount(tree, 2, p, ModelCells, CalibrationClassical, src)
		if err != nil {
			t.Fatal(err)
		}
		sum += rel.RER
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("empirical mean RER %v vs expected %v", got, want)
	}
}

func TestExpectedRERErrors(t *testing.T) {
	t.Parallel()
	if _, err := ExpectedRER(nil, 0, dp.Params{Epsilon: 1}, ModelCells, CalibrationClassical); !errors.Is(err, ErrNilTree) {
		t.Errorf("nil tree: %v", err)
	}
}

func TestReleaseCells(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9, Delta: 1e-5}
	rel, err := ReleaseCells(tree, 1, p, CalibrationClassical, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if rel.SideGroups != 4 || len(rel.Counts) != 16 {
		t.Errorf("cell release shape = %d groups, %d counts", rel.SideGroups, len(rel.Counts))
	}
	// The sum of noisy cells should be within a few sigma·sqrt(cells) of
	// the true total.
	trueTotal := float64(tree.Graph().NumEdges())
	slack := 6 * rel.Sigma * math.Sqrt(float64(len(rel.Counts)))
	if diff := math.Abs(rel.SumCells() - trueTotal); diff > slack {
		t.Errorf("cell sum off by %v, slack %v", diff, slack)
	}
}

func TestReleaseCellsErrors(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9, Delta: 1e-5}
	if _, err := ReleaseCells(nil, 0, p, CalibrationClassical, rng.New(1)); !errors.Is(err, ErrNilTree) {
		t.Errorf("nil tree: %v", err)
	}
	if _, err := ReleaseCells(tree, 0, p, CalibrationClassical, nil); !errors.Is(err, dp.ErrNilSource) {
		t.Errorf("nil source: %v", err)
	}
	if _, err := ReleaseCells(tree, 42, p, CalibrationClassical, rng.New(1)); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := ReleaseCells(tree, 0, dp.Params{Epsilon: -1}, CalibrationClassical, rng.New(1)); err == nil {
		t.Error("bad params accepted")
	}
}

func TestReleaseLevels(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9, Delta: 1e-5}
	m, err := ReleaseLevels(tree, []int{0, 1, 2}, p, ModelCells, CalibrationClassical, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxLevel != 3 || len(m.Levels) != 3 {
		t.Errorf("multi release = %+v", m)
	}
	if rel, ok := m.ForLevel(1); !ok || rel.Level != 1 {
		t.Errorf("ForLevel(1) = %+v, %v", rel, ok)
	}
	if _, ok := m.ForLevel(9); ok {
		t.Error("ForLevel(9) found a missing level")
	}
	if _, err := ReleaseLevels(tree, nil, p, ModelCells, CalibrationClassical, rng.New(4)); !errors.Is(err, ErrEmptyLevels) {
		t.Errorf("empty levels: %v", err)
	}
	if _, err := ReleaseLevels(nil, []int{0}, p, ModelCells, CalibrationClassical, rng.New(4)); !errors.Is(err, ErrNilTree) {
		t.Errorf("nil tree: %v", err)
	}
	if _, err := ReleaseLevels(tree, []int{0, 77}, p, ModelCells, CalibrationClassical, rng.New(4)); err == nil {
		t.Error("bad level in list accepted")
	}
}

func TestOmitTrue(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9, Delta: 1e-5}
	m, err := ReleaseLevels(tree, []int{0, 1}, p, ModelCells, CalibrationClassical, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	pub := m.OmitTrue()
	for _, r := range pub.Levels {
		if r.TrueCount != 0 || r.RER != 0 {
			t.Errorf("published release leaks true count: %+v", r)
		}
		if r.NoisyCount == 0 {
			t.Error("published release lost the noisy answer")
		}
	}
	// Original untouched.
	if m.Levels[0].TrueCount == 0 {
		t.Error("OmitTrue mutated the original")
	}
}

func TestLevelReleaseJSONRoundTrip(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	p := dp.Params{Epsilon: 0.9, Delta: 1e-5}
	rel, err := ReleaseCount(tree, 1, p, ModelCells, CalibrationClassical, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(rel)
	if err != nil {
		t.Fatal(err)
	}
	var got LevelRelease
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.Level != rel.Level || got.NoisyCount != rel.NoisyCount || got.ModelName != "cells" {
		t.Errorf("round trip = %+v", got)
	}
}

// TestGroupPrivacyEmpirical checks the defining inequality of Def. 4 on a
// tiny universe: the count mechanism run on D and on D minus its largest
// level-1 group produces output histograms whose ratio is bounded by
// e^{εg} (up to δ and sampling noise) when noise is calibrated at the
// group sensitivity.
func TestGroupPrivacyEmpirical(t *testing.T) {
	t.Parallel()
	tree := testTree(t)
	const level = 1
	p := dp.Params{Epsilon: 0.8, Delta: 1e-4}
	sens, err := Sensitivity(tree, level, ModelCells)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := Sigma(p, sens, CalibrationClassical)
	if err != nil {
		t.Fatal(err)
	}
	// Removing the largest group shifts the true count by sens; the two
	// output distributions are N(T, σ²) and N(T−sens, σ²). Empirically
	// verify the ratio bound on coarse bins around the means.
	src := rng.New(999)
	T := float64(tree.Graph().NumEdges())
	const n = 400000
	binW := sigma / 2
	h1 := map[int]float64{}
	h2 := map[int]float64{}
	for i := 0; i < n; i++ {
		v1 := T + src.NormalSigma(sigma)
		v2 := (T - float64(sens)) + src.NormalSigma(sigma)
		h1[int(math.Floor(v1/binW))]++
		h2[int(math.Floor(v2/binW))]++
	}
	bound := math.Exp(p.Epsilon)
	for bin, c1 := range h1 {
		c2 := h2[bin]
		if c1 < 5000 || c2 < 5000 {
			continue
		}
		ratio := c1 / c2
		if ratio > bound*1.25 || 1/ratio > bound*1.25 {
			t.Errorf("bin %d: ratio %v exceeds e^εg = %v", bin, ratio, bound)
		}
	}
}
