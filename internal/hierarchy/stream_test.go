package hierarchy

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/datagen"
	"repro/internal/partition"
	"repro/internal/rng"
)

// streamBisector returns a fresh bisector of the given kind; private
// bisectors are seeded identically on every call so paired builds consume
// the same cut stream.
func streamBisector(t testing.TB, private bool, seed uint64) partition.Bisector {
	t.Helper()
	if !private {
		return partition.BalancedBisector{}
	}
	bis, err := partition.NewExpMechBisector(0.4, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return bis
}

// TestBuildFromEdgesMatchesInMemory is the golden test for the streamed
// build: over both a graph-edge cursor and the synthetic Zipf stream, for
// Workers ∈ {1, 4} and both private and non-private bisectors, the
// two-pass BuildFromEdges tree must be bit-identical to Build on the
// materialized graph — permutations, bounds, every cell matrix, degree
// prefix sums and the private-cut count.
func TestBuildFromEdgesMatchesInMemory(t *testing.T) {
	t.Parallel()
	cfg := datagen.Config{
		Name: "stream-golden", NumLeft: 400, NumRight: 650, NumEdges: 5200,
		LeftZipf: 1.9, RightZipf: 2.8, Seed: 17,
	}
	g, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, private := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d private=%v", workers, private)
			opts := func() Options {
				return Options{Rounds: 7, Bisector: streamBisector(t, private, 99), Workers: workers}
			}
			want, err := Build(g, opts())
			if err != nil {
				t.Fatalf("%s: in-memory build: %v", name, err)
			}

			fromGraph, err := BuildFromEdges(bipartite.NewGraphSource(g), opts())
			if err != nil {
				t.Fatalf("%s: streamed build (graph cursor): %v", name, err)
			}
			assertTreesIdentical(t, name+" graph-cursor", want, fromGraph)

			zs, err := datagen.NewStream(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fromZipf, err := BuildFromEdges(zs, opts())
			if err != nil {
				t.Fatalf("%s: streamed build (zipf stream): %v", name, err)
			}
			assertTreesIdentical(t, name+" zipf-stream", want, fromZipf)

			if err := fromGraph.Validate(); err != nil {
				t.Fatalf("%s: streamed tree fails Validate: %v", name, err)
			}
			if fromGraph.Graph() != nil {
				t.Fatalf("%s: streamed tree unexpectedly carries a graph", name)
			}
			if fromGraph.NumEdges() != g.NumEdges() {
				t.Fatalf("%s: NumEdges = %d, want %d", name, fromGraph.NumEdges(), g.NumEdges())
			}
			if got, want := fromGraph.DatasetStats(), bipartite.ComputeStats(g); got != want {
				t.Fatalf("%s: DatasetStats diverge:\n  streamed %+v\n  graph    %+v", name, got, want)
			}

			// The serialized grouping must agree byte for byte too.
			var a, b bytes.Buffer
			if err := want.EncodeBinary(&a); err != nil {
				t.Fatal(err)
			}
			if err := fromGraph.EncodeBinary(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("%s: encoded trees differ", name)
			}
		}
	}
}

// TestBuildFromEdgesFileSources runs the golden comparison through the
// actual file codecs: a TSV dump and a binary dump of the same graph must
// stream into trees bit-identical to the in-memory build.
func TestBuildFromEdgesFileSources(t *testing.T) {
	t.Parallel()
	g := randomGraph(t, 180, 260, 3100, 21)
	opts := Options{Rounds: 6, Bisector: partition.BalancedBisector{}}
	want, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	var tsv bytes.Buffer
	if err := bipartite.SaveTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}
	tsvSrc, err := bipartite.NewTSVEdgeSource(bytes.NewReader(tsv.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromTSV, err := BuildFromEdges(tsvSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTreesIdentical(t, "tsv", want, fromTSV)

	var bin bytes.Buffer
	if err := bipartite.EncodeBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	binSrc, err := bipartite.NewBinaryEdgeSource(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := BuildFromEdges(binSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTreesIdentical(t, "binary", want, fromBin)
}

// TestBuilderReuseStreamed: one retained Builder across streamed builds of
// different sizes produces trees bit-identical to throwaway builds.
func TestBuilderReuseStreamed(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	defer b.Close()
	for i, shape := range []struct{ nl, nr, edges int }{
		{300, 200, 4000}, {80, 120, 900}, {500, 500, 8000},
	} {
		g := randomGraph(t, shape.nl, shape.nr, shape.edges, uint64(40+i))
		opts := Options{Rounds: 5, Bisector: streamBisector(t, true, uint64(7+i)), Workers: 1 + i}
		want, err := BuildFromEdges(bipartite.NewGraphSource(g), Options{
			Rounds: 5, Bisector: streamBisector(t, true, uint64(7+i)), Workers: 1 + i,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.BuildFromEdges(bipartite.NewGraphSource(g), opts)
		if err != nil {
			t.Fatal(err)
		}
		assertTreesIdentical(t, fmt.Sprintf("reused build %d", i), want, got)
	}
}

// unstableSource yields a different edge multiset on its second pass —
// the two-pass cross-check must reject it.
type unstableSource struct {
	passes int
	next   int
}

func (s *unstableSource) edges() []bipartite.Edge {
	edges := []bipartite.Edge{
		{Left: 0, Right: 0}, {Left: 1, Right: 1}, {Left: 2, Right: 2}, {Left: 3, Right: 0},
	}
	if s.passes > 1 {
		return edges[:3] // an edge vanishes on replay
	}
	return edges
}

func (s *unstableSource) NextChunk(dst []bipartite.Edge) (int, error) {
	edges := s.edges()
	if s.next >= len(edges) {
		return 0, io.EOF
	}
	n := copy(dst, edges[s.next:])
	s.next += n
	return n, nil
}

func (s *unstableSource) Reset() error { s.passes++; s.next = 0; return nil }

func (s *unstableSource) Sides() (int32, int32, bool) { return 4, 3, true }

func TestBuildFromEdgesRejectsUnstableSource(t *testing.T) {
	t.Parallel()
	_, err := BuildFromEdges(&unstableSource{}, Options{Rounds: 2, Bisector: partition.BalancedBisector{}})
	if err == nil {
		t.Fatal("want error for a source whose replay differs")
	}
	if !strings.Contains(err.Error(), "changed between passes") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestBuildFromEdgesNilAndBadOptions mirrors Build's option validation.
func TestBuildFromEdgesNilAndBadOptions(t *testing.T) {
	t.Parallel()
	if _, err := BuildFromEdges(nil, Options{Rounds: 2, Bisector: partition.BalancedBisector{}}); err != ErrNilSource {
		t.Fatalf("nil source: got %v, want ErrNilSource", err)
	}
	src := bipartite.NewSliceSource(2, 2, []bipartite.Edge{{Left: 0, Right: 0}})
	if _, err := BuildFromEdges(src, Options{Rounds: 2}); err != ErrNilBisector {
		t.Fatalf("nil bisector: got %v, want ErrNilBisector", err)
	}
	if _, err := BuildFromEdges(src, Options{Rounds: 0, Bisector: partition.BalancedBisector{}}); err == nil {
		t.Fatal("want rounds validation error")
	}
}

// BenchmarkStreamedBuild pins the memory envelope: allocs/op must stay
// flat as the edge count scales 10× with the sides fixed, because the
// build holds O(chunk + sides + 4^rounds) — never the edges.
func BenchmarkStreamedBuild(b *testing.B) {
	for _, edges := range []int{30000, 300000} {
		b.Run(fmt.Sprintf("edges=%d", edges), func(b *testing.B) {
			cfg := datagen.Config{
				Name: "bench", NumLeft: 1500, NumRight: 1500, NumEdges: edges,
				LeftZipf: 1.9, RightZipf: 2.8, Seed: 3,
			}
			list, nl, nr, err := datagen.EdgeList(cfg)
			if err != nil {
				b.Fatal(err)
			}
			src := bipartite.NewSliceSource(nl, nr, list)
			opts := Options{Rounds: 8, Bisector: partition.BalancedBisector{}}
			bld := NewBuilder()
			defer bld.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bld.BuildFromEdges(src, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// narrowChunkSource wraps a source to hand out at most chunkCap edges per
// NextChunk, forcing multi-chunk traffic through the degree-pass pipeline
// regardless of the consumer's buffer size. It hides the declared sides
// when hideSides is set, exercising the grow-by-observed-id path.
type narrowChunkSource struct {
	inner     bipartite.EdgeSource
	chunkCap  int
	hideSides bool
}

func (s *narrowChunkSource) NextChunk(dst []bipartite.Edge) (int, error) {
	if len(dst) > s.chunkCap {
		dst = dst[:s.chunkCap]
	}
	return s.inner.NextChunk(dst)
}

func (s *narrowChunkSource) Reset() error { return s.inner.Reset() }

func (s *narrowChunkSource) Sides() (int32, int32, bool) {
	if s.hideSides {
		return 0, 0, false
	}
	return s.inner.Sides()
}

// TestScanStreamDegreesParallelMatchesSerial pins the parallel degree
// pass (satellite of the streamed ingest pipeline): across worker
// counts and chunk sizes, the merged per-worker arrays must equal the
// serial sweep exactly. Undeclared sides route to the serial fallback
// (the workers× array blowup cannot be bounded without declared sides)
// and must of course agree too.
func TestScanStreamDegreesParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	g := randomGraph(t, 230, 170, 6100, 33)
	for _, hideSides := range []bool{false, true} {
		for _, chunkCap := range []int{17, 256, 8192} {
			mk := func() bipartite.EdgeSource {
				return &narrowChunkSource{inner: bipartite.NewGraphSource(g), chunkCap: chunkCap, hideSides: hideSides}
			}
			wantL, wantR, err := scanStreamDegrees(mk(), 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				gotL, gotR, err := scanStreamDegrees(mk(), workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !slicesEqualInt64(gotL, wantL) || !slicesEqualInt64(gotR, wantR) {
					t.Fatalf("hideSides=%v chunk=%d workers=%d: parallel degree pass diverges from serial",
						hideSides, chunkCap, workers)
				}
			}
		}
	}

	// Negative ids must be rejected on the parallel path too.
	bad := bipartite.NewSliceSource(4, 4, []bipartite.Edge{{Left: 1, Right: 1}, {Left: -1, Right: 2}})
	if _, _, err := scanStreamDegrees(&narrowChunkSource{inner: bad, chunkCap: 1}, 4); err == nil {
		t.Fatal("parallel degree pass accepted a negative node id")
	}
}

func slicesEqualInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
