package release

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dp"
	"repro/internal/hierarchy"
	"repro/internal/partition"

	"repro/internal/bipartite"
)

func testGraph(t testing.TB) *bipartite.Graph {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{
		Name: "test", NumLeft: 300, NumRight: 500, NumEdges: 3000,
		LeftZipf: 1.9, RightZipf: 2.8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func defaultBudget() dp.Params { return dp.Params{Epsilon: 0.9, Delta: 1e-5} }

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(dp.Params{}); err == nil {
		t.Error("invalid budget accepted")
	}
	bad := []Option{
		WithRounds(0),
		WithRounds(hierarchy.MaxRounds + 1),
		WithLevels(nil),
		WithMode(Mode(9)),
		WithModel(core.GroupModel(9)),
		WithCalibration(core.Calibration(9)),
		WithPhase1Epsilon(-1),
		WithBisector(nil),
		WithOrder(hierarchy.Order(9)),
	}
	for i, opt := range bad {
		if _, err := New(defaultBudget(), opt); !errors.Is(err, ErrBadOption) {
			t.Errorf("bad option %d error = %v", i, err)
		}
	}
	// Level beyond rounds.
	if _, err := New(defaultBudget(), WithRounds(3), WithLevels([]int{5})); !errors.Is(err, ErrBadOption) {
		t.Error("out-of-range level accepted")
	}
}

func TestModeString(t *testing.T) {
	t.Parallel()
	if ModePerLevel.String() != "per-level" ||
		ModeComposedBasic.String() != "composed-basic" ||
		ModeComposedAdvanced.String() != "composed-advanced" {
		t.Error("unexpected mode names")
	}
	if !strings.Contains(Mode(7).String(), "7") {
		t.Error("invalid mode should render its number")
	}
}

func TestRunDefaultsPaperSetup(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget(), WithRounds(6), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	rel, err := p.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// Default levels are 0..rounds-2.
	want := []int{0, 1, 2, 3, 4}
	got := rel.Levels()
	if len(got) != len(want) {
		t.Fatalf("levels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("levels = %v, want %v", got, want)
		}
	}
	if rel.Dataset.NumEdges != g.NumEdges() {
		t.Errorf("dataset stats edges = %d", rel.Dataset.NumEdges)
	}
	if rel.ModeName != "per-level" || rel.ModelName != "cells" || rel.CalibName != "classical" {
		t.Errorf("config names = %s/%s/%s", rel.ModeName, rel.ModelName, rel.CalibName)
	}
	if len(rel.Profiles) != 7 {
		t.Errorf("profiles = %d, want 7", len(rel.Profiles))
	}
	if rel.Tree() == nil {
		t.Error("tree not exposed")
	}
	// RER grows with level (noise scales with group size).
	var prevSigma float64 = -1
	for _, lr := range rel.Counts.Levels {
		if lr.Sigma < prevSigma {
			t.Errorf("sigma decreased at level %d", lr.Level)
		}
		prevSigma = lr.Sigma
	}
}

func TestRunNilGraph(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil); !errors.Is(err, ErrNilGraph) {
		t.Errorf("nil graph: %v", err)
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	t.Parallel()
	g := testGraph(t)
	run := func() *Release {
		p, err := New(defaultBudget(), WithRounds(5), WithSeed(42), WithPhase1Epsilon(0.1))
		if err != nil {
			t.Fatal(err)
		}
		rel, err := p.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	a, b := run(), run()
	for i := range a.Counts.Levels {
		if a.Counts.Levels[i].NoisyCount != b.Counts.Levels[i].NoisyCount {
			t.Fatalf("level %d noisy counts differ under same seed", i)
		}
	}
	// A different seed changes the noise.
	p2, err := New(defaultBudget(), WithRounds(5), WithSeed(43), WithPhase1Epsilon(0.1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := p2.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Counts.Levels {
		if a.Counts.Levels[i].NoisyCount != c.Counts.Levels[i].NoisyCount {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestRunPrivatePhase1Accounting(t *testing.T) {
	t.Parallel()
	g := testGraph(t)
	const perCut = 0.05
	p, err := New(defaultBudget(), WithRounds(4), WithSeed(1), WithPhase1Epsilon(perCut))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 4 * perCut
	if math.Abs(rel.Phase1Epsilon-want) > 1e-12 {
		t.Errorf("Phase1Epsilon = %v, want %v", rel.Phase1Epsilon, want)
	}
	// Audit trail contains phase1 and phase2 entries.
	var p1, p2 int
	for _, op := range rel.Audit {
		switch {
		case strings.HasPrefix(op.Label, "phase1/"):
			p1++
		case strings.HasPrefix(op.Label, "phase2/"):
			p2++
		}
	}
	if p1 != 8 {
		t.Errorf("phase1 audit ops = %d, want 8", p1)
	}
	if p2 != len(rel.Counts.Levels) {
		t.Errorf("phase2 audit ops = %d, want %d", p2, len(rel.Counts.Levels))
	}
}

func TestRunNonPrivatePhase1HasNoCost(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget(), WithRounds(4))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Phase1Epsilon != 0 {
		t.Errorf("Phase1Epsilon = %v, want 0", rel.Phase1Epsilon)
	}
}

func TestRunComposedBasicSplitsBudget(t *testing.T) {
	t.Parallel()
	g := testGraph(t)
	p, err := New(defaultBudget(), WithRounds(5), WithMode(ModeComposedBasic), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	nQueries := float64(len(rel.Counts.Levels))
	wantPer := defaultBudget().Epsilon / nQueries
	for _, lr := range rel.Counts.Levels {
		if math.Abs(lr.Epsilon-wantPer) > 1e-12 {
			t.Errorf("level %d epsilon = %v, want %v", lr.Level, lr.Epsilon, wantPer)
		}
	}
	if rel.SequentialCostEpsilon > defaultBudget().Epsilon*(1+1e-9) {
		t.Errorf("composed sequential cost %v exceeds budget", rel.SequentialCostEpsilon)
	}
}

func TestRunComposedAdvancedBeatsBasic(t *testing.T) {
	t.Parallel()
	g := testGraph(t)
	runMode := func(m Mode) *Release {
		p, err := New(defaultBudget(), WithRounds(6), WithMode(m), WithSeed(2))
		if err != nil {
			t.Fatal(err)
		}
		rel, err := p.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	basic := runMode(ModeComposedBasic)
	adv := runMode(ModeComposedAdvanced)
	// Advanced composition should grant each query at least as much ε
	// when there are several queries... with only 5 queries the advanced
	// bound can actually be worse; just verify both run and report
	// consistent budgets.
	if basic.Counts.Levels[0].Epsilon <= 0 || adv.Counts.Levels[0].Epsilon <= 0 {
		t.Error("per-query epsilon not positive")
	}
	if adv.Counts.Levels[0].Delta <= 0 {
		t.Error("advanced mode must spend delta per query")
	}
}

func TestRunComposedAdvancedRequiresDelta(t *testing.T) {
	t.Parallel()
	p, err := New(dp.Params{Epsilon: 1}, WithRounds(4), WithMode(ModeComposedAdvanced))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(testGraph(t)); !errors.Is(err, ErrBadOption) {
		t.Errorf("pure-dp advanced error = %v", err)
	}
}

func TestRunParallelVsSequentialCost(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget(), WithRounds(5), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	// Per-level mode: parallel cost = εg, sequential = levels × εg.
	if math.Abs(rel.ParallelCostEpsilon-defaultBudget().Epsilon) > 1e-12 {
		t.Errorf("parallel cost = %v", rel.ParallelCostEpsilon)
	}
	wantSeq := float64(len(rel.Counts.Levels)) * defaultBudget().Epsilon
	if math.Abs(rel.SequentialCostEpsilon-wantSeq) > 1e-9 {
		t.Errorf("sequential cost = %v, want %v", rel.SequentialCostEpsilon, wantSeq)
	}
}

func TestRunWithCellHistograms(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget(), WithRounds(4), WithCellHistograms(true), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Cells) != len(rel.Counts.Levels) {
		t.Fatalf("cells = %d, counts = %d", len(rel.Cells), len(rel.Counts.Levels))
	}
	v, err := rel.ViewFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cells == nil {
		t.Error("view missing cell histogram")
	}
	k := v.Cells.SideGroups
	if len(v.Cells.Counts) != k*k {
		t.Errorf("cell grid = %d counts for k=%d", len(v.Cells.Counts), k)
	}
}

func TestViewFor(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget(), WithRounds(4), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	v, err := rel.ViewFor(2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Level != 2 || v.Count.Level != 2 || v.Cells != nil {
		t.Errorf("view = %+v", v)
	}
	if _, err := rel.ViewFor(42); err == nil {
		t.Error("missing level accepted")
	}
}

func TestWithBisectorOverride(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget(), WithRounds(4), WithBisector(partition.MidpointBisector{}), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Phase1Epsilon != 0 {
		t.Error("non-private override should cost nothing")
	}
}

func TestClassicalCalibrationRejectsLargeEpsilon(t *testing.T) {
	t.Parallel()
	p, err := New(dp.Params{Epsilon: 1.5, Delta: 1e-5}, WithRounds(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(testGraph(t)); err == nil {
		t.Error("classical calibration accepted epsilon >= 1")
	}
	// Analytic calibration handles it.
	p2, err := New(dp.Params{Epsilon: 1.5, Delta: 1e-5}, WithRounds(4),
		WithCalibration(core.CalibrationAnalytic))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Run(testGraph(t)); err != nil {
		t.Errorf("analytic calibration failed: %v", err)
	}
}

func TestWriteJSON(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget(), WithRounds(4), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}

	var pub bytes.Buffer
	if err := rel.WriteJSON(&pub, false); err != nil {
		t.Fatal(err)
	}
	var decoded Release
	if err := json.Unmarshal(pub.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	for _, lr := range decoded.Counts.Levels {
		if lr.TrueCount != 0 {
			t.Error("published json leaks true count")
		}
		if lr.NoisyCount == 0 {
			t.Error("published json lost noisy count")
		}
	}

	var priv bytes.Buffer
	if err := rel.WriteJSON(&priv, true); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(priv.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Counts.Levels[0].TrueCount == 0 {
		t.Error("private json missing true count")
	}
}

func TestWithMechanismLaplacePureDP(t *testing.T) {
	t.Parallel()
	// Laplace mechanism handles a pure budget (no delta) and stays
	// integral-free but valid even for eps >= 1.
	p, err := New(dp.Params{Epsilon: 1.5}, WithRounds(4), WithSeed(5),
		WithMechanism(core.MechLaplace))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if rel.MechName != "laplace" {
		t.Errorf("MechName = %q", rel.MechName)
	}
	for _, lr := range rel.Counts.Levels {
		if lr.MechName != "laplace" || lr.Delta != 0 {
			t.Errorf("level release = %+v", lr)
		}
	}
	if _, err := New(dp.Params{Epsilon: 1}, WithMechanism(core.NoiseMechanism(9))); !errors.Is(err, ErrBadOption) {
		t.Error("bad mechanism accepted")
	}
}

func TestWithMechanismGeometricIntegral(t *testing.T) {
	t.Parallel()
	p, err := New(dp.Params{Epsilon: 0.9}, WithRounds(4), WithSeed(6),
		WithMechanism(core.MechGeometric))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range rel.Counts.Levels {
		if lr.NoisyCount != math.Trunc(lr.NoisyCount) {
			t.Errorf("geometric release non-integral: %v", lr.NoisyCount)
		}
	}
}

func TestComposedRDPMode(t *testing.T) {
	t.Parallel()
	g := testGraph(t)
	budget := dp.Params{Epsilon: 1.0, Delta: 1e-5}
	p, err := New(budget, WithRounds(5), WithSeed(3), WithMode(ModeComposedRDP))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if rel.ModeName != "composed-rdp" {
		t.Errorf("mode = %q", rel.ModeName)
	}
	// The RDP-composed sequential cost is the configured budget.
	if math.Abs(rel.SequentialCostEpsilon-budget.Epsilon) > 1e-9 {
		t.Errorf("sequential cost = %v, want %v", rel.SequentialCostEpsilon, budget.Epsilon)
	}
	// Equal RDP shares: Δ/σ must be (nearly) constant across levels.
	var ratio float64
	for i, lr := range rel.Counts.Levels {
		if lr.Sigma <= 0 || lr.Sensitivity <= 0 {
			t.Fatalf("level %d: sigma %v sens %d", lr.Level, lr.Sigma, lr.Sensitivity)
		}
		r := float64(lr.Sensitivity) / lr.Sigma
		if i == 0 {
			ratio = r
			continue
		}
		if math.Abs(r-ratio)/ratio > 1e-9 {
			t.Errorf("level %d RDP share ratio %v != %v", lr.Level, r, ratio)
		}
		// Honest per-level epsilon is positive and below the total.
		if lr.Epsilon <= 0 || lr.Epsilon >= budget.Epsilon {
			t.Errorf("level %d advertised epsilon %v", lr.Level, lr.Epsilon)
		}
	}
	if rel.CalibName != "classical" {
		// CalibName records the configured calibration even though
		// per-level releases use the rdp path; per-level CalibName says
		// "rdp".
		t.Logf("release calibration label = %q", rel.CalibName)
	}
	for _, lr := range rel.Counts.Levels {
		if lr.CalibName != "rdp" {
			t.Errorf("level calibration = %q, want rdp", lr.CalibName)
		}
	}
}

func TestComposedRDPBeatsBasicForManyQueries(t *testing.T) {
	t.Parallel()
	g := testGraph(t)
	budget := dp.Params{Epsilon: 1.0, Delta: 1e-5}
	run := func(mode Mode) *Release {
		p, err := New(budget, WithRounds(6), WithSeed(3), WithMode(mode), WithCellHistograms(true))
		if err != nil {
			t.Fatal(err)
		}
		rel, err := p.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	basic := run(ModeComposedBasic)
	rdp := run(ModeComposedRDP)
	// Same global budget; RDP should afford each level less noise (10
	// queries here).
	for i := range basic.Counts.Levels {
		if rdp.Counts.Levels[i].Sigma >= basic.Counts.Levels[i].Sigma {
			t.Errorf("level %d: rdp sigma %v not below basic %v",
				basic.Counts.Levels[i].Level, rdp.Counts.Levels[i].Sigma, basic.Counts.Levels[i].Sigma)
		}
	}
}

func TestComposedRDPValidation(t *testing.T) {
	t.Parallel()
	g := testGraph(t)
	// Requires delta.
	p, err := New(dp.Params{Epsilon: 1}, WithRounds(4), WithMode(ModeComposedRDP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(g); !errors.Is(err, ErrBadOption) {
		t.Errorf("pure budget: %v", err)
	}
	// Requires the gaussian mechanism.
	p2, err := New(dp.Params{Epsilon: 1, Delta: 1e-5}, WithRounds(4),
		WithMode(ModeComposedRDP), WithMechanism(core.MechLaplace))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Run(g); !errors.Is(err, ErrBadOption) {
		t.Errorf("laplace + rdp: %v", err)
	}
}

func TestWithConsistency(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget(), WithRounds(4), WithSeed(5),
		WithCellHistograms(true), WithConsistency(true))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	// Cells ordered coarse-first after enforcement; every parent equals
	// its children's sum.
	if len(rel.Cells) < 2 {
		t.Fatal("expected multiple cell releases")
	}
	for d := 0; d < len(rel.Cells)-1; d++ {
		parent, child := rel.Cells[d], rel.Cells[d+1]
		if child.SideGroups != 2*parent.SideGroups {
			t.Fatalf("cells not ordered coarse-first: k=%d then k=%d", parent.SideGroups, child.SideGroups)
		}
		k, ck := parent.SideGroups, child.SideGroups
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				var sum float64
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						sum += child.Counts[(2*i+a)*ck+(2*j+b)]
					}
				}
				if math.Abs(parent.Counts[i*k+j]-sum) > 1e-6 {
					t.Fatalf("inconsistent after WithConsistency at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestWithConsistencyRequiresHistograms(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget(), WithRounds(4), WithConsistency(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(testGraph(t)); !errors.Is(err, ErrBadOption) {
		t.Errorf("consistency without histograms: %v", err)
	}
}

func TestNodeGroupModelRuns(t *testing.T) {
	t.Parallel()
	p, err := New(defaultBudget(), WithRounds(4), WithModel(core.ModelNodeGroups), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if rel.ModelName != "node-groups" {
		t.Errorf("model = %q", rel.ModelName)
	}
	// Node-group sensitivity is at least cell sensitivity at each level.
	pCells, err := New(defaultBudget(), WithRounds(4), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	relCells, err := pCells.Run(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rel.Counts.Levels {
		if rel.Counts.Levels[i].Sensitivity < relCells.Counts.Levels[i].Sensitivity {
			t.Errorf("level %d: node-group sensitivity below cell sensitivity", i)
		}
	}
}
